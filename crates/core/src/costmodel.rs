//! The analytic communication-cost model of Table 1 and the `BestScheme`
//! selection rule (Algorithm 1).
//!
//! Costs are expressed, as in the paper, in **number of f32 parameters
//! communicated by one node per iteration** for synchronising one `M × N`
//! fully-connected layer on a cluster of `P1` workers and `P2` server shards
//! with per-worker batch size `K`. Multiply by 4 for bytes.

use crate::config::{ClusterConfig, Codec, CommScheme, Topology};
use poseidon_tensor::compress::TOPK_DEFAULT_PERMILLE;

/// Per-role communication load (in f32 values), one row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCost {
    /// Load on a pure server node.
    pub server: f64,
    /// Load on a pure worker node.
    pub worker: f64,
    /// Load on a node acting as both server and worker (the paper's
    /// deployment).
    pub server_and_worker: f64,
}

impl CommCost {
    /// The load relevant to the given deployment.
    pub fn for_cluster(&self, cluster: &ClusterConfig) -> f64 {
        if cluster.colocated {
            self.server_and_worker
        } else {
            self.worker.max(self.server)
        }
    }
}

/// Parameter-server cost for an `M × N` layer (Table 1, row "PS").
///
/// A worker pushes `MN` gradients and pulls `MN` parameters (`2MN`); a server
/// holding `1/P2` of the parameters exchanges `2·P1·MN/P2`; a colocated node
/// subtracts its local shard traffic: `2MN(P1 + P2 − 2)/P2`.
pub fn ps_cost(m: usize, n: usize, cluster: &ClusterConfig) -> CommCost {
    let mn = (m as f64) * (n as f64);
    let p1 = cluster.workers as f64;
    let p2 = cluster.servers as f64;
    CommCost {
        server: 2.0 * p1 * mn / p2,
        worker: 2.0 * mn,
        server_and_worker: 2.0 * mn * (p1 + p2 - 2.0) / p2,
    }
}

/// Sufficient-factor broadcasting cost (Table 1, row "SFB").
///
/// Every worker broadcasts `K` factor pairs of `M + N` values to the other
/// `P1 − 1` workers and receives as many: `2K(P1 − 1)(M + N)`. There is no
/// server role.
pub fn sfb_cost(m: usize, n: usize, cluster: &ClusterConfig) -> f64 {
    let p1 = cluster.workers as f64;
    let k = cluster.batch_per_worker as f64;
    2.0 * k * (p1 - 1.0) * (m as f64 + n as f64)
}

/// Project Adam's cost (Table 1, row "Adam", worst-case server).
///
/// Workers push `K(M+N)` factor values and pull the dense `MN` matrix; the
/// single server shard owning the layer receives `P1·K(M+N)` and broadcasts
/// `P1·MN`; a colocated node carries `(P1 − 1)(MN + KM + KN)`.
pub fn adam_cost(m: usize, n: usize, cluster: &ClusterConfig) -> CommCost {
    let mn = (m as f64) * (n as f64);
    let p1 = cluster.workers as f64;
    let k = cluster.batch_per_worker as f64;
    let kmn = k * (m as f64 + n as f64);
    CommCost {
        server: p1 * mn + p1 * kmn,
        worker: kmn + mn,
        server_and_worker: (p1 - 1.0) * (mn + k * m as f64 + k * n as f64),
    }
}

/// Algorithm 1: the cheapest scheme for an `M × N` FC layer.
///
/// Returns [`CommScheme::Sfb`] iff `2K(P1−1)(M+N) ≤ 2MN(P1+P2−2)/P2`,
/// otherwise [`CommScheme::Ps`]. Non-FC layers never reach this function —
/// their updates are indecomposable, so the caller uses PS directly.
pub fn best_scheme_fc(m: usize, n: usize, cluster: &ClusterConfig) -> CommScheme {
    let sfb = sfb_cost(m, n, cluster);
    let ps = ps_cost(m, n, cluster).server_and_worker;
    if sfb <= ps {
        CommScheme::Sfb
    } else {
        CommScheme::Ps
    }
}

/// The batch size at which SFB stops being cheaper than PS for an `M × N`
/// layer (the crossover the paper describes in Section 5.2: SFB helps
/// "especially when the batch size is small").
pub fn sfb_crossover_batch(m: usize, n: usize, workers: usize, servers: usize) -> f64 {
    let mn = (m as f64) * (n as f64);
    let p1 = workers as f64;
    let p2 = servers as f64;
    mn * (p1 + p2 - 2.0) / (p2 * (p1 - 1.0) * (m as f64 + n as f64))
}

// ---------------------------------------------------------------------------
// Topology-aware step-time model (generalised HybComm)
// ---------------------------------------------------------------------------
//
// Table 1 counts bytes on a flat switched cluster; with a hierarchical
// topology the *where* matters as much as the *how much*. For each scheme we
// estimate three one-direction byte loads — the busiest device NIC
// (intra-node speed), the busiest per-node uplink, and the total crossing the
// (possibly oversubscribed) core — and take
// `latency_term + max(load / bandwidth)` as the predicted sync time. The
// loads mirror what our runtimes actually send: PS is the colocated Table-1
// row, SFB an all-to-all factor broadcast, ring the id-ordered chain carrying
// the full tensor twice around (see `syncer`), and tree a raw gather to the
// root plus a broadcast back down (no interior reduction — that is what
// keeps the fold bitwise identical to PS).

/// Predicted synchronisation time per scheme for one layer, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeTimes {
    /// Parameter server (always available).
    pub ps: f64,
    /// Sufficient-factor broadcast (`None` for non-FC layers).
    pub sfb: Option<f64>,
    /// Ring allreduce (chain; requires ≥ 2 workers).
    pub ring: f64,
    /// Tree allreduce (raw gather + broadcast; requires ≥ 2 workers).
    pub tree: f64,
}

fn bw_bytes(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// `latency + max(nic, uplink, core)` given one-direction byte loads.
fn step_time(topo: &Topology, latency: f64, nic: f64, uplink: f64, core: f64) -> f64 {
    let t_nic = nic / bw_bytes(topo.intra.bandwidth_gbps);
    let t_up = uplink / bw_bytes(topo.inter.bandwidth_gbps);
    let t_core = core / bw_bytes(topo.core_bandwidth_gbps());
    latency + t_nic.max(t_up).max(t_core)
}

/// Fraction of a device's `p − 1` peers living on a *different* node.
fn inter_fraction(topo: &Topology) -> f64 {
    let p = topo.total_devices() as f64;
    if p <= 1.0 {
        return 0.0;
    }
    (p - topo.devices_per_node as f64) / (p - 1.0)
}

/// Predicted PS sync time for a layer of `param_elems` f32 values.
pub fn ps_time_topo(param_elems: usize, topo: &Topology) -> f64 {
    let b = 4.0 * param_elems as f64;
    let p = topo.total_devices() as f64;
    let d = topo.devices_per_node as f64;
    if p <= 1.0 {
        return 0.0;
    }
    let f = inter_fraction(topo);
    // Colocated Table-1 row, one direction: push the remote (p−1)/p of the
    // gradient, serve the pulls of the local shard — 2B(p−1)/p per device.
    let dev = 2.0 * b * (p - 1.0) / p;
    let uplink = d * dev * f;
    let core = p * dev * f;
    // Two serialised phases (push, then pull after the fold).
    step_time(topo, 2.0 * topo.inter.latency_s, dev, uplink, core)
}

/// Predicted SFB sync time for an `m × n` FC layer at per-worker batch `k`.
pub fn sfb_time_topo(m: usize, n: usize, k: usize, topo: &Topology) -> f64 {
    let p = topo.total_devices() as f64;
    let d = topo.devices_per_node as f64;
    if p <= 1.0 {
        return 0.0;
    }
    let fbytes = 4.0 * k as f64 * (m as f64 + n as f64);
    let dev = fbytes * (p - 1.0);
    let uplink = d * fbytes * (p - d).max(0.0);
    let core = p * fbytes * (p - d).max(0.0);
    step_time(topo, topo.inter.latency_s, dev, uplink, core)
}

/// Predicted ring-allreduce sync time for a layer of `param_elems` values.
///
/// Models the runtime's pipelined id-ordered chain: the full tensor transits
/// every link once per phase (reduce, distribute), so each device forwards
/// ≈ 2B; with node-contiguous placement each lap crosses every node boundary
/// once. Hop latencies accumulate (the chain is sequential in latency even
/// though segments pipeline in bandwidth).
pub fn ring_time_topo(param_elems: usize, topo: &Topology) -> f64 {
    let b = 4.0 * param_elems as f64;
    let p = topo.total_devices();
    if p <= 1 {
        return 0.0;
    }
    let total_hops = 2 * (p - 1);
    let inter_hops = if topo.nodes > 1 {
        (2 * (topo.nodes - 1) + 1).min(total_hops)
    } else {
        0
    };
    let intra_hops = total_hops - inter_hops;
    let latency =
        inter_hops as f64 * topo.inter.latency_s + intra_hops as f64 * topo.intra.latency_s;
    let dev = 2.0 * b;
    let uplink = if topo.nodes > 1 { 2.0 * b } else { 0.0 };
    let core = inter_hops as f64 * b;
    step_time(topo, latency, dev, uplink, core)
}

/// Predicted tree-allreduce sync time for a layer of `param_elems` values.
///
/// Models the runtime's raw gather: every non-root contribution reaches the
/// root unreduced (the root folds in worker-id order, bitwise equal to PS),
/// so the root's NIC receives `(p−1)B` — the price of exactness — while hop
/// depth is logarithmic.
pub fn tree_time_topo(param_elems: usize, topo: &Topology) -> f64 {
    let b = 4.0 * param_elems as f64;
    let p = topo.total_devices();
    let d = topo.devices_per_node;
    if p <= 1 {
        return 0.0;
    }
    let depth = (usize::BITS - (p - 1).leading_zeros()) as f64; // ⌈log2 p⌉
    let inter_depth = (usize::BITS - (topo.nodes - 1).leading_zeros()) as f64;
    let intra_depth = (depth - inter_depth).max(0.0);
    // Up + down traversals of the tree.
    let latency = 2.0 * (inter_depth * topo.inter.latency_s + intra_depth * topo.intra.latency_s);
    let dev = (p - 1) as f64 * b; // root gathers every contribution raw
    let uplink = (p.saturating_sub(d)) as f64 * b;
    let core = (p.saturating_sub(d) + topo.nodes.saturating_sub(1)) as f64 * b;
    step_time(topo, latency, dev, uplink, core)
}

/// Predicted per-scheme sync times for one layer on `topo`.
pub fn scheme_times_topo(
    param_elems: usize,
    fc_shape: Option<(usize, usize)>,
    cluster: &ClusterConfig,
    topo: &Topology,
) -> SchemeTimes {
    SchemeTimes {
        ps: ps_time_topo(param_elems, topo),
        sfb: fc_shape.map(|(m, n)| sfb_time_topo(m, n, cluster.batch_per_worker, topo)),
        ring: ring_time_topo(param_elems, topo),
        tree: tree_time_topo(param_elems, topo),
    }
}

/// Generalised Algorithm 1: the cheapest of PS/SFB/ring/tree for a layer of
/// `param_elems` values (SFB only competes when `fc_shape` is `Some`) on the
/// given hierarchical topology.
///
/// Ties break deterministically in the preference order PS > SFB > ring >
/// tree, so byte-count ties never flip the choice between runs.
pub fn best_scheme_topo(
    param_elems: usize,
    fc_shape: Option<(usize, usize)>,
    cluster: &ClusterConfig,
    topo: &Topology,
) -> CommScheme {
    if topo.total_devices() <= 1 || cluster.workers <= 1 {
        return CommScheme::Ps;
    }
    let t = scheme_times_topo(param_elems, fc_shape, cluster, topo);
    let mut best = (CommScheme::Ps, t.ps);
    let mut consider = |scheme: CommScheme, time: f64| {
        if time < best.1 {
            best = (scheme, time);
        }
    };
    if let Some(sfb) = t.sfb {
        consider(CommScheme::Sfb, sfb);
    }
    consider(CommScheme::Ring, t.ring);
    consider(CommScheme::Tree, t.tree);
    best.0
}

// ---------------------------------------------------------------------------
// Per-codec terms: bytes saved vs reconstruction cost
// ---------------------------------------------------------------------------
//
// A codec trades wire bytes for CPU passes over the dense tensor. Both sides
// of that trade are linear in the layer size, so a purely linear model would
// make the choice size-independent; the fixed per-pass overhead below (buffer
// allocation, state lookup, kernel dispatch) is what keeps small tensors on
// the raw path — compression only pays for large layers, exactly the regime
// the paper's FC/conv split exposes.

/// f32 values per second one codec transform pass (encode or decode) streams
/// through — roughly a memory-bound 8 GB/s pass on one core.
const CODEC_TRANSFORM_ELEMS_PER_S: f64 = 2e9;

/// Fixed setup cost per transform pass (allocation, residual-state lookup,
/// dispatch).
const CODEC_PASS_OVERHEAD_S: f64 = 20e-6;

/// The codecs Algorithm 1's generalisation prices against each other.
/// Identity first: ties break toward the bitwise-exact wire.
pub const CODEC_CANDIDATES: [Codec; 4] = [
    Codec::Identity,
    Codec::OneBit,
    Codec::F16,
    Codec::TopK {
        permille: TOPK_DEFAULT_PERMILLE,
    },
];

/// Dense-tensor transform passes a scheme's critical path spends per codec
/// round trip.
///
/// PS: the worker encodes its push, a shard decodes its fan-in (P pushes of
/// `1/P` of the layer each — one pass over the layer total) and the worker
/// decodes the broadcast deltas — ≈ 3 passes. Ring: decompress–add–recompress
/// on the reduce lap plus a decode on the distribute lap — ≈ 3. Tree: the
/// root decodes every contribution in full (the price of the bitwise-ordered
/// fold), so passes grow with the worker count. Top-k additionally pays a
/// selection pass over the residual-accumulated tensor per encode.
fn codec_passes(codec: Codec, scheme: CommScheme, cluster: &ClusterConfig) -> f64 {
    let base = match scheme {
        CommScheme::Ps | CommScheme::Ring => 3.0,
        CommScheme::Tree => cluster.workers as f64 + 1.0,
        CommScheme::Sfb | CommScheme::AdamSf => return 0.0,
    };
    match codec {
        Codec::Identity => 0.0,
        Codec::TopK { .. } => 2.0 * base,
        _ => base,
    }
}

/// Predicted sync time for one layer under `(scheme, codec)`: the scheme's
/// topology time with the wire load scaled by the codec's payload ratio, plus
/// the codec's CPU reconstruction cost.
pub fn codec_time_topo(
    codec: Codec,
    param_elems: usize,
    scheme: CommScheme,
    cluster: &ClusterConfig,
    topo: &Topology,
) -> f64 {
    // The scheme times are linear in bytes above their latency floor, so
    // pricing the compressed payload is pricing an equivalent smaller tensor.
    let wire_elems = codec.payload_bytes(param_elems).div_ceil(4);
    let wire = match scheme {
        CommScheme::Ps => ps_time_topo(wire_elems, topo),
        CommScheme::Ring => ring_time_topo(wire_elems, topo),
        CommScheme::Tree => tree_time_topo(wire_elems, topo),
        // Factor schemes never re-encode (the factors are the compression);
        // their codec is always identity and this term is not consulted.
        CommScheme::Sfb | CommScheme::AdamSf => 0.0,
    };
    let passes = codec_passes(codec, scheme, cluster);
    wire + passes * (CODEC_PASS_OVERHEAD_S + param_elems as f64 / CODEC_TRANSFORM_ELEMS_PER_S)
}

/// The cheapest codec for a layer of `param_elems` values already assigned to
/// `scheme` on `topo`. Factor schemes (SFB/Adam) always return identity; ties
/// break toward identity, then the [`CODEC_CANDIDATES`] order, so byte-count
/// ties never flip the choice between runs.
pub fn best_codec_topo(
    param_elems: usize,
    scheme: CommScheme,
    cluster: &ClusterConfig,
    topo: &Topology,
) -> Codec {
    if matches!(scheme, CommScheme::Sfb | CommScheme::AdamSf) || topo.total_devices() <= 1 {
        return Codec::Identity;
    }
    let mut best = (
        Codec::Identity,
        codec_time_topo(Codec::Identity, param_elems, scheme, cluster, topo),
    );
    for codec in CODEC_CANDIDATES.into_iter().skip(1) {
        let t = codec_time_topo(codec, param_elems, scheme, cluster, topo);
        if t < best.1 {
            best = (codec, t);
        }
    }
    best.0
}

/// The full generalised Algorithm 1: the cheapest `(scheme, codec)` pair for
/// a layer on a hierarchical topology. Schemes are priced at their own best
/// codec, so a compressible PS layer can beat a raw collective and vice
/// versa. Tie-breaking follows the scheme preference order (PS > SFB > ring >
/// tree), then identity-first within a scheme.
pub fn best_scheme_codec_topo(
    param_elems: usize,
    fc_shape: Option<(usize, usize)>,
    cluster: &ClusterConfig,
    topo: &Topology,
) -> (CommScheme, Codec) {
    if topo.total_devices() <= 1 || cluster.workers <= 1 {
        return (CommScheme::Ps, Codec::Identity);
    }
    let priced = |scheme: CommScheme| {
        let codec = best_codec_topo(param_elems, scheme, cluster, topo);
        (
            codec,
            codec_time_topo(codec, param_elems, scheme, cluster, topo),
        )
    };
    let (ps_codec, ps_t) = priced(CommScheme::Ps);
    let mut best = (CommScheme::Ps, ps_codec, ps_t);
    let mut consider = |scheme: CommScheme, codec: Codec, time: f64| {
        if time < best.2 {
            best = (scheme, codec, time);
        }
    };
    if let Some((m, n)) = fc_shape {
        consider(
            CommScheme::Sfb,
            Codec::Identity,
            sfb_time_topo(m, n, cluster.batch_per_worker, topo),
        );
    }
    let (ring_codec, ring_t) = priced(CommScheme::Ring);
    consider(CommScheme::Ring, ring_codec, ring_t);
    let (tree_codec, tree_t) = priced(CommScheme::Tree);
    consider(CommScheme::Tree, tree_codec, tree_t);
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example in Section 3.2: M = N = 4096, K = 32, P1 = P2 = 8.
    #[test]
    fn paper_worked_example_numbers() {
        let cluster = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: 32,
            colocated: true,
        };
        let ps = ps_cost(4096, 4096, &cluster);
        // "synchronizing its parameters via PS will transfer 2MN ≈ 34 million
        // parameters for a worker node".
        assert!(
            (ps.worker - 33.55e6).abs() / 33.55e6 < 0.01,
            "worker {}",
            ps.worker
        );
        // "2·P1·MN/P2 ≈ 34 million for a server node".
        assert!((ps.server - 33.55e6).abs() / 33.55e6 < 0.01);
        // "2MN(P1+P2−2)/P2 ≈ 58.7 million for a node that is both".
        assert!(
            (ps.server_and_worker - 58.7e6).abs() / 58.7e6 < 0.01,
            "both {}",
            ps.server_and_worker
        );
        // "compared to 2K(M+N)(P1−1) ≈ 3.7 million for a single node using SFB".
        let sfb = sfb_cost(4096, 4096, &cluster);
        assert!((sfb - 3.67e6).abs() / 3.67e6 < 0.01, "sfb {sfb}");
        // SFB wins by ~16x.
        assert_eq!(best_scheme_fc(4096, 4096, &cluster), CommScheme::Sfb);
    }

    #[test]
    fn thin_fc_with_large_batch_prefers_ps() {
        // GoogLeNet's 1000×1024 classifier at batch 128 on 16 nodes — the
        // paper observes Poseidon "reduces to PS" in this configuration.
        let cluster = ClusterConfig::colocated(16, 128);
        assert_eq!(best_scheme_fc(1000, 1024, &cluster), CommScheme::Ps);
    }

    #[test]
    fn vgg_fc6_at_small_batch_prefers_sfb() {
        // VGG19's 4096×25088 fc6 at batch 32.
        for nodes in [2usize, 4, 8, 16, 32] {
            let cluster = ClusterConfig::colocated(nodes, 32);
            assert_eq!(
                best_scheme_fc(4096, 25088, &cluster),
                CommScheme::Sfb,
                "{nodes} nodes"
            );
        }
    }

    #[test]
    fn sfb_cost_grows_quadratically_with_workers() {
        // Total cluster-wide SFB traffic grows ~P², per-node ~P (Section 2.1
        // difference (3)).
        let c8 = ClusterConfig::colocated(8, 32);
        let c16 = ClusterConfig::colocated(16, 32);
        let per_node_8 = sfb_cost(1024, 1024, &c8);
        let per_node_16 = sfb_cost(1024, 1024, &c16);
        let total_8 = per_node_8 * 8.0;
        let total_16 = per_node_16 * 16.0;
        let ratio = total_16 / total_8;
        assert!(
            ratio > 4.0 && ratio < 4.5,
            "total SFB traffic ratio {ratio}"
        );
    }

    #[test]
    fn adam_server_load_dwarfs_worker_load() {
        let cluster = ClusterConfig::colocated(8, 32);
        let adam = adam_cost(4096, 4096, &cluster);
        assert!(
            adam.server > 6.0 * adam.worker,
            "Adam's owning shard must be the hotspot: server {} vs worker {}",
            adam.server,
            adam.worker
        );
    }

    #[test]
    fn crossover_batch_matches_best_scheme_decision() {
        let (m, n) = (4096usize, 4096usize);
        let crossover = sfb_crossover_batch(m, n, 8, 8);
        let below = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: crossover.floor() as usize,
            colocated: true,
        };
        let above = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: crossover.ceil() as usize + 1,
            colocated: true,
        };
        assert_eq!(best_scheme_fc(m, n, &below), CommScheme::Sfb);
        assert_eq!(best_scheme_fc(m, n, &above), CommScheme::Ps);
    }

    #[test]
    fn single_worker_sfb_costs_nothing() {
        let cluster = ClusterConfig::colocated(1, 32);
        assert_eq!(sfb_cost(100, 100, &cluster), 0.0);
        // And PS on one colocated node is also free: (P1+P2-2)/P2 = 0.
        assert_eq!(ps_cost(100, 100, &cluster).server_and_worker, 0.0);
    }

    /// 4 nodes × 2 devices, fast intra links, slow uplinks, 4× oversubscribed
    /// core — the configuration where collectives should beat PS for big
    /// tensors.
    fn oversubscribed() -> Topology {
        Topology::two_level(
            4,
            2,
            poseidon_netsim::LinkConfig {
                bandwidth_gbps: 100.0,
                latency_s: 1e-6,
            },
            poseidon_netsim::LinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 50e-6,
            },
            4.0,
        )
    }

    #[test]
    fn small_layers_prefer_ps_large_prefer_collectives_when_oversubscribed() {
        let topo = oversubscribed();
        let cluster = ClusterConfig::colocated(8, 32);
        // A small conv layer: latency-bound, PS's two hops beat the ring's
        // 2(P−1) sequential hops.
        assert_eq!(
            best_scheme_topo(1_000, None, &cluster, &topo),
            CommScheme::Ps
        );
        // A big conv tensor (no SFB factorisation available): bandwidth-bound
        // on the oversubscribed core, where the chain's ≈2·nodes·B core bytes
        // beat PS's ≈2B(P−1)·f.
        let big = 16 * 1024 * 1024; // 64 MiB
        let choice = best_scheme_topo(big, None, &cluster, &topo);
        assert!(
            matches!(choice, CommScheme::Ring | CommScheme::Tree),
            "large conv should pick a collective, got {choice}"
        );
        assert!(ring_time_topo(big, &topo) < ps_time_topo(big, &topo));
    }

    #[test]
    fn fc_layers_still_go_to_sfb_when_factors_are_tiny() {
        // VGG-style 4096×4096 at batch 32: factors are ~1/64 of the dense
        // tensor, so SFB undercuts every dense scheme even on the
        // oversubscribed core.
        let topo = oversubscribed();
        let cluster = ClusterConfig::colocated(8, 32);
        let elems = 4096 * 4096;
        assert_eq!(
            best_scheme_topo(elems, Some((4096, 4096)), &cluster, &topo),
            CommScheme::Sfb
        );
    }

    #[test]
    fn single_worker_topology_always_ps() {
        let topo = Topology::flat(1, poseidon_netsim::LinkConfig::gbe(10.0));
        let cluster = ClusterConfig::colocated(1, 32);
        for elems in [10usize, 1 << 24] {
            assert_eq!(
                best_scheme_topo(elems, Some((64, 64)), &cluster, &topo),
                CommScheme::Ps
            );
        }
    }

    #[test]
    fn predicted_times_scale_with_tensor_size() {
        let topo = oversubscribed();
        for f in [ps_time_topo, ring_time_topo, tree_time_topo] {
            let small = f(1 << 10, &topo);
            let large = f(1 << 24, &topo);
            assert!(large > small, "{large} vs {small}");
        }
    }

    #[test]
    fn more_inter_bandwidth_never_hurts_any_scheme() {
        let cluster = ClusterConfig::colocated(8, 32);
        let elems = 1 << 22;
        let mut prev = SchemeTimes {
            ps: f64::INFINITY,
            sfb: Some(f64::INFINITY),
            ring: f64::INFINITY,
            tree: f64::INFINITY,
        };
        for gbps in [1.0, 4.0, 10.0, 40.0, 100.0] {
            let mut topo = oversubscribed();
            topo.inter.bandwidth_gbps = gbps;
            let t = scheme_times_topo(elems, Some((2048, 2048)), &cluster, &topo);
            assert!(t.ps <= prev.ps);
            assert!(t.sfb.unwrap() <= prev.sfb.unwrap());
            assert!(t.ring <= prev.ring);
            assert!(t.tree <= prev.tree);
            prev = t;
        }
    }

    #[test]
    fn tie_breaks_prefer_ps() {
        // Zero-size layer: every predicted time collapses to its latency
        // floor... but with equal *everything* — zero devices of traffic —
        // force an exact tie by pricing a zero-element layer on a
        // single-node multi-device topology where all latencies match.
        let link = poseidon_netsim::LinkConfig {
            bandwidth_gbps: 10.0,
            latency_s: 0.0,
        };
        let topo = Topology::two_level(1, 4, link, link, 1.0);
        let cluster = ClusterConfig::colocated(4, 32);
        // elems = 0 → all times 0.0 → tie → PS by preference order.
        assert_eq!(best_scheme_topo(0, None, &cluster, &topo), CommScheme::Ps);
    }

    #[test]
    fn ring_moves_fewer_bytes_over_the_oversubscribed_core() {
        // Replay one layer's worth of each protocol's transfers through the
        // hierarchical network and compare what the shared core actually
        // carried — the model's core terms must match the ledger, and the
        // ring's node-contiguous chain must beat PS's all-to-all sharding.
        use poseidon_netsim::{HierNetwork, LinkConfig, NodeId};
        let link = |gbps: f64, lat: f64| LinkConfig {
            bandwidth_gbps: gbps,
            latency_s: lat,
        };
        let topo = Topology::two_level(4, 2, link(100.0, 1e-6), link(10.0, 50e-6), 4.0);
        let p = topo.total_devices();
        let bytes: u64 = 8 << 20; // one 2M-element layer

        // Ring: REDUCE chain 0→1→…→P−1, DISTRIBUTE P−1→0→…→P−2.
        let mut ring = HierNetwork::new(topo);
        for w in 0..p - 1 {
            ring.transfer(0.0, NodeId(w), NodeId(w + 1), bytes);
        }
        ring.transfer(0.0, NodeId(p - 1), NodeId(0), bytes);
        for w in 0..p - 2 {
            ring.transfer(0.0, NodeId(w), NodeId(w + 1), bytes);
        }
        // Node-contiguous device order crosses each node boundary once per
        // lap: 2(nodes−1)+1 core traversals, exactly the model's inter_hops.
        assert_eq!(ring.ledger().core_bytes(), 7 * bytes);

        // Colocated PS: every worker pushes 1/P to each shard, then pulls.
        let mut ps = HierNetwork::new(topo);
        for _phase in 0..2 {
            for w in 0..p {
                for s in 0..p {
                    if s != w {
                        ps.transfer(0.0, NodeId(w), NodeId(s), bytes / p as u64);
                    }
                }
            }
        }
        // Per phase, 6 of each device's 7 peers live off-node: 2·P·6·(B/P)
        // core bytes = 12B.
        assert_eq!(ps.ledger().core_bytes(), 12 * bytes);
        assert!(
            ring.ledger().core_bytes() * 3 < ps.ledger().core_bytes() * 2,
            "ring must cut oversubscribed-core traffic by ≥ a third: {} vs {}",
            ring.ledger().core_bytes(),
            ps.ledger().core_bytes()
        );
    }

    #[test]
    fn codec_choice_tracks_layer_size() {
        // Flat 10 GbE, the paper's testbed: a 64-element bias is latency- and
        // overhead-bound (raw wins); a 16M-element conv tensor is
        // bandwidth-bound (a lossy codec wins).
        let topo = Topology::flat(8, poseidon_netsim::LinkConfig::gbe(10.0));
        let cluster = ClusterConfig::colocated(8, 32);
        assert_eq!(
            best_codec_topo(64, CommScheme::Ps, &cluster, &topo),
            Codec::Identity
        );
        let big = best_codec_topo(16 << 20, CommScheme::Ps, &cluster, &topo);
        assert_ne!(big, Codec::Identity, "16M floats at 10G must compress");
    }

    #[test]
    fn factor_schemes_never_compress() {
        let topo = Topology::flat(8, poseidon_netsim::LinkConfig::gbe(10.0));
        let cluster = ClusterConfig::colocated(8, 32);
        for scheme in [CommScheme::Sfb, CommScheme::AdamSf] {
            assert_eq!(
                best_codec_topo(16 << 20, scheme, &cluster, &topo),
                Codec::Identity
            );
        }
    }

    #[test]
    fn faster_links_shift_the_choice_toward_identity() {
        // At some bandwidth the wire is no longer the bottleneck and the
        // reconstruction CPU stops paying for itself.
        let cluster = ClusterConfig::colocated(8, 32);
        let elems = 1 << 20;
        let slow = Topology::flat(8, poseidon_netsim::LinkConfig::gbe(1.0));
        let fast = Topology::flat(8, poseidon_netsim::LinkConfig::gbe(400.0));
        assert_ne!(
            best_codec_topo(elems, CommScheme::Ps, &cluster, &slow),
            Codec::Identity,
            "1 GbE: compress"
        );
        assert_eq!(
            best_codec_topo(elems, CommScheme::Ps, &cluster, &fast),
            Codec::Identity,
            "400 GbE: raw"
        );
    }

    #[test]
    fn codec_time_identity_matches_plain_scheme_time() {
        let topo = oversubscribed();
        let cluster = ClusterConfig::colocated(8, 32);
        let elems = 1 << 22;
        assert_eq!(
            codec_time_topo(Codec::Identity, elems, CommScheme::Ps, &cluster, &topo),
            ps_time_topo(elems, &topo)
        );
        assert_eq!(
            codec_time_topo(Codec::Identity, elems, CommScheme::Ring, &cluster, &topo),
            ring_time_topo(elems, &topo)
        );
    }

    #[test]
    fn scheme_codec_pairing_is_consistent() {
        // The joint choice must agree with pricing each part separately, and
        // an SFB winner always rides identity.
        let topo = oversubscribed();
        let cluster = ClusterConfig::colocated(8, 32);
        for (elems, fc) in [
            (1_000usize, None),
            (16 << 20, None),
            (4096 * 4096, Some((4096usize, 4096usize))),
        ] {
            let (scheme, codec) = best_scheme_codec_topo(elems, fc, &cluster, &topo);
            if scheme == CommScheme::Sfb {
                assert_eq!(codec, Codec::Identity);
            } else {
                assert_eq!(codec, best_codec_topo(elems, scheme, &cluster, &topo));
            }
        }
        // Single worker: always (PS, identity).
        let solo = ClusterConfig::colocated(1, 32);
        let flat1 = Topology::flat(1, poseidon_netsim::LinkConfig::gbe(10.0));
        assert_eq!(
            best_scheme_codec_topo(16 << 20, None, &solo, &flat1),
            (CommScheme::Ps, Codec::Identity)
        );
    }

    #[test]
    fn cost_for_cluster_selects_role() {
        let colocated = ClusterConfig::colocated(4, 8);
        let disjoint = ClusterConfig {
            workers: 4,
            servers: 2,
            batch_per_worker: 8,
            colocated: false,
        };
        let cost = CommCost {
            server: 10.0,
            worker: 4.0,
            server_and_worker: 12.0,
        };
        assert_eq!(cost.for_cluster(&colocated), 12.0);
        assert_eq!(cost.for_cluster(&disjoint), 10.0, "bottleneck role governs");
    }
}
