//! The analytic communication-cost model of Table 1 and the `BestScheme`
//! selection rule (Algorithm 1).
//!
//! Costs are expressed, as in the paper, in **number of f32 parameters
//! communicated by one node per iteration** for synchronising one `M × N`
//! fully-connected layer on a cluster of `P1` workers and `P2` server shards
//! with per-worker batch size `K`. Multiply by 4 for bytes.

use crate::config::{ClusterConfig, CommScheme};

/// Per-role communication load (in f32 values), one row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCost {
    /// Load on a pure server node.
    pub server: f64,
    /// Load on a pure worker node.
    pub worker: f64,
    /// Load on a node acting as both server and worker (the paper's
    /// deployment).
    pub server_and_worker: f64,
}

impl CommCost {
    /// The load relevant to the given deployment.
    pub fn for_cluster(&self, cluster: &ClusterConfig) -> f64 {
        if cluster.colocated {
            self.server_and_worker
        } else {
            self.worker.max(self.server)
        }
    }
}

/// Parameter-server cost for an `M × N` layer (Table 1, row "PS").
///
/// A worker pushes `MN` gradients and pulls `MN` parameters (`2MN`); a server
/// holding `1/P2` of the parameters exchanges `2·P1·MN/P2`; a colocated node
/// subtracts its local shard traffic: `2MN(P1 + P2 − 2)/P2`.
pub fn ps_cost(m: usize, n: usize, cluster: &ClusterConfig) -> CommCost {
    let mn = (m as f64) * (n as f64);
    let p1 = cluster.workers as f64;
    let p2 = cluster.servers as f64;
    CommCost {
        server: 2.0 * p1 * mn / p2,
        worker: 2.0 * mn,
        server_and_worker: 2.0 * mn * (p1 + p2 - 2.0) / p2,
    }
}

/// Sufficient-factor broadcasting cost (Table 1, row "SFB").
///
/// Every worker broadcasts `K` factor pairs of `M + N` values to the other
/// `P1 − 1` workers and receives as many: `2K(P1 − 1)(M + N)`. There is no
/// server role.
pub fn sfb_cost(m: usize, n: usize, cluster: &ClusterConfig) -> f64 {
    let p1 = cluster.workers as f64;
    let k = cluster.batch_per_worker as f64;
    2.0 * k * (p1 - 1.0) * (m as f64 + n as f64)
}

/// Project Adam's cost (Table 1, row "Adam", worst-case server).
///
/// Workers push `K(M+N)` factor values and pull the dense `MN` matrix; the
/// single server shard owning the layer receives `P1·K(M+N)` and broadcasts
/// `P1·MN`; a colocated node carries `(P1 − 1)(MN + KM + KN)`.
pub fn adam_cost(m: usize, n: usize, cluster: &ClusterConfig) -> CommCost {
    let mn = (m as f64) * (n as f64);
    let p1 = cluster.workers as f64;
    let k = cluster.batch_per_worker as f64;
    let kmn = k * (m as f64 + n as f64);
    CommCost {
        server: p1 * mn + p1 * kmn,
        worker: kmn + mn,
        server_and_worker: (p1 - 1.0) * (mn + k * m as f64 + k * n as f64),
    }
}

/// Algorithm 1: the cheapest scheme for an `M × N` FC layer.
///
/// Returns [`CommScheme::Sfb`] iff `2K(P1−1)(M+N) ≤ 2MN(P1+P2−2)/P2`,
/// otherwise [`CommScheme::Ps`]. Non-FC layers never reach this function —
/// their updates are indecomposable, so the caller uses PS directly.
pub fn best_scheme_fc(m: usize, n: usize, cluster: &ClusterConfig) -> CommScheme {
    let sfb = sfb_cost(m, n, cluster);
    let ps = ps_cost(m, n, cluster).server_and_worker;
    if sfb <= ps {
        CommScheme::Sfb
    } else {
        CommScheme::Ps
    }
}

/// The batch size at which SFB stops being cheaper than PS for an `M × N`
/// layer (the crossover the paper describes in Section 5.2: SFB helps
/// "especially when the batch size is small").
pub fn sfb_crossover_batch(m: usize, n: usize, workers: usize, servers: usize) -> f64 {
    let mn = (m as f64) * (n as f64);
    let p1 = workers as f64;
    let p2 = servers as f64;
    mn * (p1 + p2 - 2.0) / (p2 * (p1 - 1.0) * (m as f64 + n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example in Section 3.2: M = N = 4096, K = 32, P1 = P2 = 8.
    #[test]
    fn paper_worked_example_numbers() {
        let cluster = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: 32,
            colocated: true,
        };
        let ps = ps_cost(4096, 4096, &cluster);
        // "synchronizing its parameters via PS will transfer 2MN ≈ 34 million
        // parameters for a worker node".
        assert!(
            (ps.worker - 33.55e6).abs() / 33.55e6 < 0.01,
            "worker {}",
            ps.worker
        );
        // "2·P1·MN/P2 ≈ 34 million for a server node".
        assert!((ps.server - 33.55e6).abs() / 33.55e6 < 0.01);
        // "2MN(P1+P2−2)/P2 ≈ 58.7 million for a node that is both".
        assert!(
            (ps.server_and_worker - 58.7e6).abs() / 58.7e6 < 0.01,
            "both {}",
            ps.server_and_worker
        );
        // "compared to 2K(M+N)(P1−1) ≈ 3.7 million for a single node using SFB".
        let sfb = sfb_cost(4096, 4096, &cluster);
        assert!((sfb - 3.67e6).abs() / 3.67e6 < 0.01, "sfb {sfb}");
        // SFB wins by ~16x.
        assert_eq!(best_scheme_fc(4096, 4096, &cluster), CommScheme::Sfb);
    }

    #[test]
    fn thin_fc_with_large_batch_prefers_ps() {
        // GoogLeNet's 1000×1024 classifier at batch 128 on 16 nodes — the
        // paper observes Poseidon "reduces to PS" in this configuration.
        let cluster = ClusterConfig::colocated(16, 128);
        assert_eq!(best_scheme_fc(1000, 1024, &cluster), CommScheme::Ps);
    }

    #[test]
    fn vgg_fc6_at_small_batch_prefers_sfb() {
        // VGG19's 4096×25088 fc6 at batch 32.
        for nodes in [2usize, 4, 8, 16, 32] {
            let cluster = ClusterConfig::colocated(nodes, 32);
            assert_eq!(
                best_scheme_fc(4096, 25088, &cluster),
                CommScheme::Sfb,
                "{nodes} nodes"
            );
        }
    }

    #[test]
    fn sfb_cost_grows_quadratically_with_workers() {
        // Total cluster-wide SFB traffic grows ~P², per-node ~P (Section 2.1
        // difference (3)).
        let c8 = ClusterConfig::colocated(8, 32);
        let c16 = ClusterConfig::colocated(16, 32);
        let per_node_8 = sfb_cost(1024, 1024, &c8);
        let per_node_16 = sfb_cost(1024, 1024, &c16);
        let total_8 = per_node_8 * 8.0;
        let total_16 = per_node_16 * 16.0;
        let ratio = total_16 / total_8;
        assert!(
            ratio > 4.0 && ratio < 4.5,
            "total SFB traffic ratio {ratio}"
        );
    }

    #[test]
    fn adam_server_load_dwarfs_worker_load() {
        let cluster = ClusterConfig::colocated(8, 32);
        let adam = adam_cost(4096, 4096, &cluster);
        assert!(
            adam.server > 6.0 * adam.worker,
            "Adam's owning shard must be the hotspot: server {} vs worker {}",
            adam.server,
            adam.worker
        );
    }

    #[test]
    fn crossover_batch_matches_best_scheme_decision() {
        let (m, n) = (4096usize, 4096usize);
        let crossover = sfb_crossover_batch(m, n, 8, 8);
        let below = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: crossover.floor() as usize,
            colocated: true,
        };
        let above = ClusterConfig {
            workers: 8,
            servers: 8,
            batch_per_worker: crossover.ceil() as usize + 1,
            colocated: true,
        };
        assert_eq!(best_scheme_fc(m, n, &below), CommScheme::Sfb);
        assert_eq!(best_scheme_fc(m, n, &above), CommScheme::Ps);
    }

    #[test]
    fn single_worker_sfb_costs_nothing() {
        let cluster = ClusterConfig::colocated(1, 32);
        assert_eq!(sfb_cost(100, 100, &cluster), 0.0);
        // And PS on one colocated node is also free: (P1+P2-2)/P2 = 0.
        assert_eq!(ps_cost(100, 100, &cluster).server_and_worker, 0.0);
    }

    #[test]
    fn cost_for_cluster_selects_role() {
        let colocated = ClusterConfig::colocated(4, 8);
        let disjoint = ClusterConfig {
            workers: 4,
            servers: 2,
            batch_per_worker: 8,
            colocated: false,
        };
        let cost = CommCost {
            server: 10.0,
            worker: 4.0,
            server_and_worker: 12.0,
        };
        assert_eq!(cost.for_cluster(&colocated), 12.0);
        assert_eq!(cost.for_cluster(&disjoint), 10.0, "bottleneck role governs");
    }
}
