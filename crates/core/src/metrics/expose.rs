//! Prometheus text exposition: the renderer and a minimal HTTP responder.
//!
//! [`render`] writes the [text exposition format, version 0.0.4]
//! (https://prometheus.io/docs/instrumenting/exposition_formats/) — `# TYPE`
//! lines, cumulative `_bucket{le=...}` series for histograms, `_sum` and
//! `_count`. Output order is deterministic (the registry is sorted), which
//! the golden test pins byte-for-byte.
//!
//! [`MetricsServer`] is the pull endpoint: a `std`-only listener thread
//! answering every HTTP request with a fresh snapshot of the global
//! registry. It speaks just enough HTTP/1.1 for Prometheus and `curl` —
//! read the request head, answer `200` with `Content-Length`, close. One
//! scrape costs one snapshot; an idle responder costs one parked thread.

use super::{Family, MetricKind, MetricsSnapshot, SampleValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{v}\""));
    }
    out.push('}');
}

fn render_family(out: &mut String, f: &Family) {
    let kind = match f.kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    };
    out.push_str(&format!("# TYPE {} {kind}\n", f.name));
    for s in &f.samples {
        match &s.value {
            SampleValue::Int(v) => {
                out.push_str(f.name);
                write_labels(out, &s.labels, None);
                out.push_str(&format!(" {v}\n"));
            }
            SampleValue::Hist(h) => {
                // Cumulative buckets up to the last non-empty one, then the
                // mandatory +Inf bucket carrying the total count.
                let mut cum = 0u64;
                let last = h
                    .buckets
                    .iter()
                    .rposition(|&n| n > 0)
                    .unwrap_or(0)
                    .min(super::HIST_BUCKETS - 2);
                for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                    cum += n;
                    let le = super::bucket_le(i).to_string();
                    out.push_str(&format!("{}_bucket", f.name));
                    write_labels(out, &s.labels, Some(("le", &le)));
                    out.push_str(&format!(" {cum}\n"));
                }
                out.push_str(&format!("{}_bucket", f.name));
                write_labels(out, &s.labels, Some(("le", "+Inf")));
                out.push_str(&format!(" {}\n", h.count));
                out.push_str(&format!("{}_sum", f.name));
                write_labels(out, &s.labels, None);
                out.push_str(&format!(" {}\n", h.sum));
                out.push_str(&format!("{}_count", f.name));
                write_labels(out, &s.labels, None);
                out.push_str(&format!(" {}\n", h.count));
            }
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for f in &snap.families {
        render_family(&mut out, f);
    }
    out
}

/// How often the listener thread polls its stop flag between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A pull-based metrics endpoint: binds `addr`, spawns one listener thread,
/// and answers every HTTP request with the global registry rendered as
/// Prometheus text. Dropping the server stops the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9100"`) and starts serving scrapes of
    /// the global registry.
    pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name(format!("metrics {addr}"))
            .spawn(move || listen_loop(listener, &stop2))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (exact port when `serve` was given port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn listen_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are rare and cheap, and one thread
                // keeps the responder's footprint fixed.
                let _ = answer(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads the request head (discarded — every path gets the metrics page)
/// and writes one `200 text/plain` response with the rendered snapshot.
fn answer(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 256];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&byte[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let body = super::snapshot().render();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    /// The golden exposition test: a registry with one of each instrument
    /// renders byte-for-byte deterministically.
    #[test]
    fn exposition_format_golden() {
        let reg = Registry::new();
        reg.counter(
            "poseidon_tx_bytes_total",
            &[("endpoint", "0"), ("peer", "1")],
        )
        .store(4096);
        reg.counter(
            "poseidon_tx_bytes_total",
            &[("endpoint", "0"), ("peer", "2")],
        )
        .store(128);
        reg.gauge("poseidon_tx_queue_peak", &[("peer", "1")])
            .store(7);
        let h = reg.histogram("poseidon_sync_wait_ns", &[("layer", "0"), ("worker", "1")]);
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(3);
        h.observe(900);
        let text = reg.snapshot().render();
        let want = "\
# TYPE poseidon_sync_wait_ns histogram
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"0\"} 1
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"1\"} 2
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"3\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"7\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"15\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"31\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"63\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"127\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"255\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"511\"} 4
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"1023\"} 5
poseidon_sync_wait_ns_bucket{layer=\"0\",worker=\"1\",le=\"+Inf\"} 5
poseidon_sync_wait_ns_sum{layer=\"0\",worker=\"1\"} 907
poseidon_sync_wait_ns_count{layer=\"0\",worker=\"1\"} 5
# TYPE poseidon_tx_bytes_total counter
poseidon_tx_bytes_total{endpoint=\"0\",peer=\"1\"} 4096
poseidon_tx_bytes_total{endpoint=\"0\",peer=\"2\"} 128
# TYPE poseidon_tx_queue_peak gauge
poseidon_tx_queue_peak{peer=\"1\"} 7
";
        assert_eq!(text, want);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("poseidon_test_total", &[("what", "a\"b\\c\nd")])
            .store(1);
        let text = reg.snapshot().render();
        assert!(text.contains(r#"what="a\"b\\c\nd""#), "{text}");
    }

    #[test]
    fn http_responder_serves_the_global_registry() {
        crate::metrics::counter("poseidon_expose_test_total", &[]).store(42);
        let server = MetricsServer::serve("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("poseidon_expose_test_total 42"),
            "{response}"
        );
        assert!(response.contains("# TYPE poseidon_pool_hits_total counter"));
        drop(server);
        // Port is released after drop: a rebind must succeed.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok(), "server thread kept the port after drop");
    }
}
