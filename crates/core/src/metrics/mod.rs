//! The live metrics plane: always-on counters, gauges, and log2-bucketed
//! histograms with Prometheus-style pull exposition.
//!
//! Orthogonal to [`crate::telemetry`] (post-hoc event *traces*, default
//! off), this module answers "how am I doing *right now*": a process-global
//! [`Registry`] of atomic instruments any thread can record into lock-free,
//! scrapeable while a mesh is training. Three constraints shape it:
//!
//! 1. **Zero dependencies.** `std` only — the HTTP responder in [`expose`]
//!    speaks just enough HTTP/1.1 to satisfy a Prometheus scraper or `curl`.
//! 2. **ns-class record path.** Recording is a handful of relaxed atomic
//!    RMWs on pre-resolved handles; the registry mutex is only taken when a
//!    handle is first created (per link / per worker, never per frame) and
//!    at snapshot time. `metrics_bench` pins the cost and `check.sh` gates
//!    the instrumented-vs-bare training overhead under 2%.
//! 3. **A pure observer.** Instruments record values the training path
//!    already computed; numerics are bitwise identical with metrics on or
//!    off (`crates/core/tests/metrics_determinism.rs`). [`set_enabled`]
//!    exists only so the bench can measure the bare path.
//!
//! # Instruments
//!
//! * [`Counter`] — monotonically increasing `u64` (frames, bytes, retries).
//! * [`Gauge`] — a settable level, with a `set_max` high-water helper
//!   (queue depth peaks, pool residency).
//! * [`Histogram`] — 64 log2 buckets: value `v` lands in bucket
//!   `bit_width(v)` (0 stays in bucket 0), so bucket `i` spans
//!   `[2^(i-1), 2^i - 1]` and covers the full `u64` range in constant
//!   space. p50/p90/p99 are derived from cumulative bucket counts, clamped
//!   to the recorded min/max ([`HistogramSnapshot::quantile`]).
//!
//! # Name schema
//!
//! Families follow Prometheus conventions — `poseidon_` prefix, `_total`
//! suffix on counters, unit suffix on histograms (`_ns`): per-iteration
//! `poseidon_step_time_ns` / `poseidon_busy_time_ns` / `poseidon_apply_ns`
//! `{worker}`, per-layer `poseidon_sync_wait_ns` `{worker,layer}`, shard
//! `poseidon_serve_ns` `{shard}`; transport `poseidon_{tx,rx}_{frames,
//! bytes}_total` `{endpoint,peer}`, `poseidon_tx_queue_peak` high-water,
//! `poseidon_writev_batch_frames`, `poseidon_reconnects_total` and
//! `poseidon_redials_total`; reliability `poseidon_retransmits_total`,
//! `poseidon_nacks_total`, `poseidon_dup_drops_total`; codec
//! `poseidon_codec_bytes_pre_total` / `poseidon_codec_bytes_post_total`
//! `{codec}` and `poseidon_poisoned_frames_total`; pool
//! `poseidon_pool_{hits,misses}_total` and `poseidon_pool_resident_bytes`
//! (bridged from [`crate::pool::BufPool::stats`] at snapshot time).
//!
//! The simulator replays its virtual-clock trace into the same families
//! ([`metrics_from_trace`]), so netsim runs and real runs are diffable.

pub mod expose;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets; covers the whole `u64` range.
pub const HIST_BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the gated record path on or off. Metrics are **on by default**
/// (they are the live-introspection plane); disabling exists for overhead
/// measurement and the determinism proof, not for production use.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether gated record calls do anything. One relaxed load.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Bucket index of a value: its bit width, clamped to the last bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` = the +Inf bucket).
pub fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Clones share the underlying cell, so
/// a handle resolved once (per link, per worker) records with one relaxed
/// RMW and no registry traffic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` (gated on [`is_enabled`]).
    #[inline]
    pub fn add(&self, by: u64) {
        if is_enabled() {
            self.0.fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Adds 1 (gated on [`is_enabled`]).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Replaces the value unconditionally. Bridges (pool stats, trace
    /// replay) use this; instrumented code paths use [`Counter::add`].
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level. Clones share the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A free-standing gauge not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level (gated on [`is_enabled`]).
    #[inline]
    pub fn set(&self, v: u64) {
        if is_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the level to at least `v` — a high-water mark (gated).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if is_enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Sets the level unconditionally (bridge/replay use).
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram (see the module docs for the bucket scheme).
/// Clones share the underlying cells; recording is five relaxed RMWs.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A free-standing histogram not attached to any registry (the worker
    /// keeps private per-run ones for the health verdict).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `v` (gated on [`is_enabled`]).
    #[inline]
    pub fn record(&self, v: u64) {
        if is_enabled() {
            self.observe(v);
        }
    }

    /// Records `v` unconditionally (trace replay and per-run private
    /// histograms, which must not flicker with the global gate).
    #[inline]
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            sum: c.sum.load(Ordering::Relaxed),
            count: c.count.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bucket `i` holds values of bit width `i`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty distribution.
    pub fn empty() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the bucket counts:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `q * count`, clamped to the recorded `[min, max]` so the estimate
    /// never leaves the observed range. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_le(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0 on empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The distribution recorded *since* `earlier` was taken from the same
    /// histogram: per-bucket and sum/count subtraction. The global registry
    /// is cumulative across runs in one process, so per-run views are
    /// deltas. `min`/`max` keep this snapshot's bounds (a superset of the
    /// delta's range — still valid clamps for [`quantile`]).
    ///
    /// [`quantile`]: HistogramSnapshot::quantile
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
            min: self.min,
            max: self.max,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A metric's instrument kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Settable level.
    Gauge,
    /// Log2-bucketed distribution.
    Histogram,
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type Labels = Vec<(&'static str, String)>;

/// A set of named, labelled instruments. Handle resolution takes the one
/// mutex; the handles themselves record lock-free. Keys are sorted
/// (`BTreeMap`), so exposition order is deterministic — the golden test
/// depends on it.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<(&'static str, Labels), Slot>>,
}

fn own_labels(labels: &[(&'static str, &str)]) -> Labels {
    labels.iter().map(|&(k, v)| (k, v.to_string())).collect()
}

impl Registry {
    /// An empty registry (tests and the trace-replay bridge; live code uses
    /// [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry((name, own_labels(labels)))
            .or_insert_with(|| Slot::Counter(Counter::new()));
        match slot {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Resolves (creating on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry((name, own_labels(labels)))
            .or_insert_with(|| Slot::Gauge(Gauge::new()));
        match slot {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// Resolves (creating on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry((name, own_labels(labels)))
            .or_insert_with(|| Slot::Histogram(Histogram::new()));
        match slot {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered as a different kind"),
        }
    }

    /// A point-in-time copy of every instrument, grouped into families by
    /// name (sorted; samples sorted by labels).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        let mut families: Vec<Family> = Vec::new();
        for ((name, labels), slot) in slots.iter() {
            let (kind, value) = match slot {
                Slot::Counter(c) => (MetricKind::Counter, SampleValue::Int(c.get())),
                Slot::Gauge(g) => (MetricKind::Gauge, SampleValue::Int(g.get())),
                Slot::Histogram(h) => (
                    MetricKind::Histogram,
                    SampleValue::Hist(Box::new(h.snapshot())),
                ),
            };
            let sample = Sample {
                labels: labels.clone(),
                value,
            };
            match families.last_mut() {
                Some(f) if f.name == *name => f.samples.push(sample),
                _ => families.push(Family {
                    name,
                    kind,
                    samples: vec![sample],
                }),
            }
        }
        MetricsSnapshot { families }
    }
}

/// One instrument's labelled value inside a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs, sorted as registered.
    pub labels: Labels,
    /// The recorded value.
    pub value: SampleValue,
}

/// A sample's value.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Counter or gauge level.
    Int(u64),
    /// Histogram state (boxed: a snapshot is ~half a KiB of buckets).
    Hist(Box<HistogramSnapshot>),
}

/// All samples sharing one metric name.
#[derive(Debug, Clone)]
pub struct Family {
    /// Metric family name (`poseidon_...`).
    pub name: &'static str,
    /// Instrument kind of every sample.
    pub kind: MetricKind,
    /// Labelled samples, sorted by labels.
    pub samples: Vec<Sample>,
}

/// A registry snapshot: the in-process API the [`crate::health`] module and
/// the Prometheus responder both consume.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<Family>,
}

fn labels_match(have: &Labels, want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && want
            .iter()
            .all(|&(k, v)| have.iter().any(|(hk, hv)| *hk == k && hv == v))
}

impl MetricsSnapshot {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Counter/gauge value at `name{labels}` (exact label match).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.family(name)?.samples.iter().find_map(|s| {
            match (&s.value, labels_match(&s.labels, labels)) {
                (SampleValue::Int(v), true) => Some(*v),
                _ => None,
            }
        })
    }

    /// Histogram at `name{labels}` (exact label match).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.family(name)?.samples.iter().find_map(|s| {
            match (&s.value, labels_match(&s.labels, labels)) {
                (SampleValue::Hist(h), true) => Some(h.as_ref()),
                _ => None,
            }
        })
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        expose::render(self)
    }
}

// ---------------------------------------------------------------------------
// Process-global registry + conveniences
// ---------------------------------------------------------------------------

/// The process-global registry every instrumented subsystem records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    global().counter(name, labels)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    global().gauge(name, labels)
}

/// [`Registry::histogram`] on the global registry.
pub fn histogram(name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
    global().histogram(name, labels)
}

/// Snapshots the global registry, first bridging the buffer-pool counters
/// ([`crate::pool::BufPool::stats`]) into their families — the pool keeps
/// its own atomics, so mirroring at snapshot time costs the hot path
/// nothing.
pub fn snapshot() -> MetricsSnapshot {
    let ps = crate::pool::BufPool::global().stats();
    global()
        .counter("poseidon_pool_hits_total", &[])
        .store(ps.hits);
    global()
        .counter("poseidon_pool_misses_total", &[])
        .store(ps.misses);
    global()
        .gauge("poseidon_pool_resident_bufs", &[])
        .store(ps.resident);
    global()
        .gauge("poseidon_pool_resident_bytes", &[])
        .store(ps.resident_bytes);
    global().snapshot()
}

/// Cached per-peer frame/byte counters for one transport endpoint, resolved
/// once at connect time so the per-frame cost is two relaxed atomic adds and
/// never a registry lookup. Families:
/// `poseidon_{tx,rx}_{frames,bytes}_total{endpoint,peer}`.
#[derive(Debug)]
pub struct PeerCounters {
    /// `(frames, bytes)` per destination endpoint.
    tx: Vec<(Counter, Counter)>,
    /// `(frames, bytes)` per source endpoint.
    rx: Vec<(Counter, Counter)>,
}

impl PeerCounters {
    /// Resolves tx/rx counter handles for `endpoint` against all `peers`
    /// endpoints (including itself — loop-back frames are traffic too).
    pub fn new(endpoint: usize, peers: usize) -> Self {
        let ep = endpoint.to_string();
        let pair = |name: &'static str, peer: &str| -> Counter {
            counter(name, &[("endpoint", &ep), ("peer", peer)])
        };
        let mut tx = Vec::with_capacity(peers);
        let mut rx = Vec::with_capacity(peers);
        for p in 0..peers {
            let peer = p.to_string();
            tx.push((
                pair("poseidon_tx_frames_total", &peer),
                pair("poseidon_tx_bytes_total", &peer),
            ));
            rx.push((
                pair("poseidon_rx_frames_total", &peer),
                pair("poseidon_rx_bytes_total", &peer),
            ));
        }
        Self { tx, rx }
    }

    /// Notes one frame of `bytes` sent to `peer` (gated, two relaxed adds).
    #[inline]
    pub fn note_tx(&self, peer: usize, bytes: u64) {
        if let Some((frames, b)) = self.tx.get(peer) {
            frames.inc();
            b.add(bytes);
        }
    }

    /// Notes one frame of `bytes` received from `peer`.
    #[inline]
    pub fn note_rx(&self, peer: usize, bytes: u64) {
        if let Some((frames, b)) = self.rx.get(peer) {
            frames.inc();
            b.add(bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// Trace replay: the simulator bridge
// ---------------------------------------------------------------------------

/// Replays recorded traces (live or simulated — the simulator emits the
/// same event schema on its virtual clock) into a fresh registry, producing
/// the same metric families a live run exposes: `iter` spans become
/// `poseidon_step_time_ns{worker}`, `wfbp.sync` spans become
/// `poseidon_sync_wait_ns{layer}`, `apply`/`serve.apply` spans become
/// `poseidon_apply_ns`/`poseidon_serve_ns`, and `tx.frame`/`rx.frame`
/// instants become the per-peer frame/byte counters. This is what makes a
/// netsim run diffable against a real mesh scrape.
pub fn metrics_from_trace(traces: &[crate::telemetry::Trace]) -> MetricsSnapshot {
    use crate::telemetry::EventKind;
    let reg = Registry::new();
    for trace in traces {
        for track in &trace.tracks {
            for (name, metric, label) in [
                ("iter", "poseidon_step_time_ns", "worker"),
                ("wfbp.sync", "poseidon_sync_wait_ns", "layer"),
                ("apply", "poseidon_apply_ns", "worker"),
                ("serve.apply", "poseidon_serve_ns", "layer"),
            ] {
                for iv in crate::telemetry::report::close_spans(track, name) {
                    reg.histogram(metric, &[(label, &iv.a.to_string())])
                        .observe(iv.end - iv.start);
                }
            }
            for ev in &track.events {
                if ev.kind != EventKind::Instant {
                    continue;
                }
                let (frames, bytes) = match ev.name {
                    "tx.frame" => ("poseidon_tx_frames_total", "poseidon_tx_bytes_total"),
                    "rx.frame" => ("poseidon_rx_frames_total", "poseidon_rx_bytes_total"),
                    _ => continue,
                };
                let peer = ev.a.to_string();
                let labels: [(&'static str, &str); 1] = [("peer", &peer)];
                let f = reg.counter(frames, &labels);
                f.store(f.get() + 1);
                let b = reg.counter(bytes, &labels);
                b.store(b.get() + ev.b);
            }
        }
    }
    reg.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled gate is process-global; tests that flip it or depend on
    // gated recording serialise on one lock so the in-binary thread pool
    // cannot interleave a disabled window into another test.
    fn gate_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_scheme_covers_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(HIST_BUCKETS - 1), u64::MAX);
        // Every value's bucket upper bound is >= the value (except the
        // clamped +Inf bucket, which is trivially MAX).
        for shift in 0..63 {
            let v = 1u64 << shift;
            assert!(bucket_le(bucket_of(v)) >= v, "v={v}");
        }
    }

    #[test]
    fn histogram_quantiles_track_recorded_range() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        assert!((s.min..=s.max).contains(&p50), "p50={p50}");
        assert!(s.quantile(0.0) >= s.min);
        assert_eq!(s.quantile(1.0).max(s.max), s.max);
        assert!(s.quantile(0.99) <= s.max);
    }

    #[test]
    fn delta_subtracts_an_earlier_snapshot() {
        let h = Histogram::new();
        h.observe(5);
        h.observe(7);
        let early = h.snapshot();
        h.observe(100);
        h.observe(200);
        let late = h.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 300);
        let p50 = d.quantile(0.5);
        assert!(p50 >= 64, "delta p50 {p50} should reflect only late values");
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let _g = gate_lock();
        let reg = Registry::new();
        let a = reg.counter("poseidon_test_total", &[("peer", "1")]);
        let b = reg.counter("poseidon_test_total", &[("peer", "1")]);
        a.store(0);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5, "clones share the cell");
        let snap = reg.snapshot();
        assert_eq!(snap.value("poseidon_test_total", &[("peer", "1")]), Some(5));
        assert_eq!(snap.value("poseidon_test_total", &[("peer", "2")]), None);
    }

    #[test]
    fn disabled_gate_freezes_gated_paths_only() {
        let _g = gate_lock();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        set_enabled(false);
        c.inc();
        g.set(9);
        h.record(9);
        h.observe(3); // unconditional path still records
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 1);
        assert_eq!(h.snapshot().sum, 3);
    }

    #[test]
    fn trace_replay_produces_live_families() {
        use crate::telemetry::{Event, EventKind, Trace, Track};
        let ev = |ts_ns, kind, name, lane, a, b| Event {
            ts_ns,
            kind,
            name,
            lane,
            a,
            b,
        };
        let mut trace = Trace::new(0, "sim");
        trace.tracks.push(Track {
            tid: 1,
            name: "worker 0".into(),
            events: vec![
                ev(0, EventKind::Begin, "iter", 0, 0, 0),
                ev(50, EventKind::Begin, "wfbp.sync", 2, 1, 0),
                ev(350, EventKind::End, "wfbp.sync", 2, 1, 0),
                ev(400, EventKind::End, "iter", 0, 0, 0),
                ev(410, EventKind::Instant, "tx.frame", 0, 3, 64),
                ev(420, EventKind::Instant, "tx.frame", 0, 3, 64),
            ],
            dropped: 0,
        });
        let snap = metrics_from_trace(&[trace]);
        let step = snap
            .histogram("poseidon_step_time_ns", &[("worker", "0")])
            .expect("step family");
        assert_eq!(step.count, 1);
        assert_eq!(step.sum, 400);
        let sync = snap
            .histogram("poseidon_sync_wait_ns", &[("layer", "1")])
            .expect("sync family");
        assert_eq!(sync.sum, 300);
        assert_eq!(
            snap.value("poseidon_tx_bytes_total", &[("peer", "3")]),
            Some(128)
        );
        assert_eq!(
            snap.value("poseidon_tx_frames_total", &[("peer", "3")]),
            Some(2)
        );
    }
}
