//! Partitioning model parameters into KV pairs and assigning them to shards.
//!
//! Poseidon "sets the size of a KV pair to a fixed small size (e.g., 2MB), so
//! as to partition and distribute model parameters to server nodes as equally
//! as possible" (Section 4.1). TensorFlow's coarse whole-tensor placement is
//! also provided as the baseline that creates hot-spots (Section 5.1).

use crate::config::Partition;

/// One KV pair: a contiguous slice of one layer's flattened parameters,
/// owned by one server shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the layer this chunk belongs to.
    pub layer: usize,
    /// Start offset (in f32 elements) within the layer's flat parameters.
    pub offset: usize,
    /// Number of f32 elements.
    pub len: usize,
    /// Owning server shard.
    pub shard: usize,
}

impl Chunk {
    /// Payload bytes of a dense f32 copy of this chunk.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * 4
    }
}

/// The chunk table for a model: every trainable layer's parameters cut into
/// KV pairs and assigned to shards.
#[derive(Clone, Debug)]
pub struct ChunkTable {
    chunks: Vec<Chunk>,
    servers: usize,
}

impl ChunkTable {
    /// Builds the table for layers of the given flat sizes (in f32 elements;
    /// one entry per layer, zero for non-trainable layers) over `servers`
    /// shards.
    ///
    /// KV pairs are assigned to shards round-robin in creation order, which
    /// spreads every large layer across all shards; whole-tensor mode assigns
    /// each layer to a single shard round-robin by trainable-layer index
    /// (TensorFlow's placement policy).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or a KV-pair size of zero is configured.
    pub fn build(layer_elems: &[usize], servers: usize, partition: Partition) -> Self {
        assert!(servers > 0, "need at least one server shard");
        let mut chunks = Vec::new();
        match partition {
            Partition::KvPairs { pair_elems } => {
                assert!(pair_elems > 0, "KV pair size must be positive");
                let mut next_shard = 0usize;
                for (layer, &elems) in layer_elems.iter().enumerate() {
                    let mut offset = 0usize;
                    while offset < elems {
                        let len = pair_elems.min(elems - offset);
                        chunks.push(Chunk {
                            layer,
                            offset,
                            len,
                            shard: next_shard,
                        });
                        next_shard = (next_shard + 1) % servers;
                        offset += len;
                    }
                }
            }
            Partition::WholeTensor => {
                let mut next_shard = 0usize;
                for (layer, &elems) in layer_elems.iter().enumerate() {
                    if elems == 0 {
                        continue;
                    }
                    chunks.push(Chunk {
                        layer,
                        offset: 0,
                        len: elems,
                        shard: next_shard,
                    });
                    next_shard = (next_shard + 1) % servers;
                }
            }
        }
        Self { chunks, servers }
    }

    /// All chunks, grouped nowhere — iteration order is layer-major then
    /// offset-major.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Chunks of one layer, offset-ordered.
    pub fn layer_chunks(&self, layer: usize) -> Vec<Chunk> {
        self.chunks
            .iter()
            .copied()
            .filter(|c| c.layer == layer)
            .collect()
    }

    /// Number of server shards.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total elements assigned to each shard (for balance diagnostics).
    pub fn shard_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.servers];
        for c in &self.chunks {
            loads[c.shard] += c.len;
        }
        loads
    }

    /// Max shard load divided by mean shard load (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let loads = self.shard_loads();
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        *loads.iter().max().expect("non-empty") as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_pairs_cover_layers_exactly() {
        let t = ChunkTable::build(&[1000, 0, 2500], 3, Partition::KvPairs { pair_elems: 1000 });
        let total: usize = t.chunks().iter().map(|c| c.len).sum();
        assert_eq!(total, 3500);
        let l2 = t.layer_chunks(2);
        assert_eq!(l2.len(), 3);
        assert_eq!(l2[0].len, 1000);
        assert_eq!(l2[2].len, 500, "tail chunk is short");
        assert_eq!(l2[2].offset, 2000);
        assert!(
            t.layer_chunks(1).is_empty(),
            "zero-size layers get no chunks"
        );
    }

    #[test]
    fn kv_pairs_balance_large_layers_across_all_shards() {
        // One huge layer (VGG-like): KV pairs must spread over every shard.
        let t = ChunkTable::build(
            &[8_000_000],
            8,
            Partition::KvPairs {
                pair_elems: 524_288,
            },
        );
        let loads = t.shard_loads();
        assert!(loads.iter().all(|&l| l > 0), "every shard holds a piece");
        assert!(t.imbalance() < 1.1, "imbalance {}", t.imbalance());
    }

    #[test]
    fn whole_tensor_creates_hotspot_for_skewed_models() {
        // VGG-like: one 100M-element tensor among small ones.
        let t = ChunkTable::build(
            &[100_000_000, 10_000, 10_000, 10_000],
            4,
            Partition::WholeTensor,
        );
        assert!(t.imbalance() > 3.5, "imbalance {}", t.imbalance());
        assert_eq!(t.layer_chunks(0).len(), 1, "tensor is not split");
    }

    #[test]
    fn whole_tensor_round_robins_layers() {
        let t = ChunkTable::build(&[10, 10, 10, 10], 2, Partition::WholeTensor);
        let shards: Vec<usize> = t.chunks().iter().map(|c| c.shard).collect();
        assert_eq!(shards, vec![0, 1, 0, 1]);
    }

    #[test]
    fn chunk_bytes() {
        let c = Chunk {
            layer: 0,
            offset: 0,
            len: 524_288,
            shard: 0,
        };
        assert_eq!(c.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn single_shard_gets_everything() {
        let t = ChunkTable::build(&[100, 200], 1, Partition::default_kv_pairs());
        assert!(t.chunks().iter().all(|c| c.shard == 0));
        assert_eq!(t.imbalance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = ChunkTable::build(&[10], 0, Partition::WholeTensor);
    }
}
