//! Elastic membership of the KV-shard plane.
//!
//! A [`MembershipPlan`] scripts shard reconfiguration on *logical* iteration
//! boundaries — never wall-clock time — so an elastic run is exactly
//! reproducible, the same way [`crate::faults::FaultPlan`] scripts failures.
//! Every event takes effect at the *start* of its iteration: the epoch
//! counter increments, KV-pair ownership is re-derived, and the departing /
//! arriving shards exchange pair state over [`Message::Handoff`] frames
//! before any gradient of the new epoch is served.
//!
//! Membership is *logical*: the transport mesh keeps all `2P` endpoints
//! wired end-to-end, and events change which shard endpoint *owns* (serves)
//! which KV pairs. A shard that leaves drains its segment, hands its pairs
//! (parameters, optimizer velocity, reply-codec residual) to the shards that
//! absorb them, and idles; a shard that joins receives pairs back. Because
//! the aggregation arithmetic is unchanged — same gradients, same fold
//! order, same scale — an elastic run is bitwise identical to the
//! fixed-membership run at the same iteration count. That invariant is what
//! the reconfiguration test harness proves.
//!
//! Ownership under epoch `e` is a pure function of the schedule:
//! `owner(home, e) = home` while `home` is active, else
//! `active[home % active.len()]` — the identity map under full membership,
//! so a trivial plan leaves routing (and loop-back accounting) untouched.
//!
//! Plans have a compact text form for `poseidon-node --membership-plan`:
//!
//! ```text
//! plan   := event (';' event)*
//! event  := action ':' shard '@' iter
//! action := 'join' | 'leave' | 'restart'
//! ```
//!
//! `leave:1@2;join:1@4` takes shard 1 out of the ownership set at the start
//! of iteration 2 and brings it back at the start of iteration 4. A shard
//! whose *first* event is `join` starts inactive. `restart:0@3` marks a
//! process-restart boundary before iteration 3 — restarts do not change
//! ownership or epoch; they tell the run driver (the `poseidon-node`
//! generation launcher, or a checkpoint/resume test) to checkpoint at that
//! boundary and resume from it, bitwise.
//!
//! [`Message::Handoff`]: crate::transport::Message::Handoff

use std::sync::Arc;

/// What a membership event does to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipAction {
    /// The shard (re)enters the ownership set.
    Join,
    /// The shard drains, hands off its pairs, and leaves the ownership set.
    Leave,
    /// Process-restart marker: checkpoint before this iteration and resume.
    /// No epoch or ownership change.
    Restart,
}

impl std::fmt::Display for MembershipAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipAction::Join => write!(f, "join"),
            MembershipAction::Leave => write!(f, "leave"),
            MembershipAction::Restart => write!(f, "restart"),
        }
    }
}

/// One scripted membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// What happens.
    pub action: MembershipAction,
    /// The shard index (`0..P`, i.e. endpoint `P + shard`).
    pub shard: usize,
    /// The iteration at whose *start* the event takes effect (≥ 1).
    pub iter: usize,
}

impl std::fmt::Display for MembershipEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}@{}", self.action, self.shard, self.iter)
    }
}

/// A deterministic script of membership events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipPlan {
    /// The scripted events, in text order.
    pub events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// The empty plan: full membership throughout, epoch 0 forever.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the compact text form (see module docs). Whitespace around
    /// events is ignored; an empty string is the empty plan.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for raw in text.split(';') {
            let spec = raw.trim();
            if spec.is_empty() {
                continue;
            }
            let (action_s, rest) = spec
                .split_once(':')
                .ok_or_else(|| format!("event `{spec}`: missing `:`"))?;
            let action = match action_s.trim() {
                "join" => MembershipAction::Join,
                "leave" => MembershipAction::Leave,
                "restart" => MembershipAction::Restart,
                other => return Err(format!("event `{spec}`: unknown action `{other}`")),
            };
            let (shard_s, iter_s) = rest
                .split_once('@')
                .ok_or_else(|| format!("event `{spec}`: missing `@iter`"))?;
            let shard: usize = shard_s
                .trim()
                .parse()
                .map_err(|_| format!("event `{spec}`: bad shard `{shard_s}`"))?;
            let iter: usize = iter_s
                .trim()
                .parse()
                .map_err(|_| format!("event `{spec}`: bad iteration `{iter_s}`"))?;
            events.push(MembershipEvent {
                action,
                shard,
                iter,
            });
        }
        Ok(Self { events })
    }
}

impl std::fmt::Display for MembershipPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

/// The resolved, validated schedule every endpoint derives identically from
/// `(plan, shards)` — epochs, per-epoch active sets, ownership, and restart
/// boundaries. Immutable; share it as an `Arc`.
#[derive(Debug)]
pub struct MembershipSchedule {
    shards: usize,
    /// Iteration boundaries with join/leave events, ascending. Epoch `e`
    /// spans `[boundary[e-1], boundary[e])` (epoch 0 starts at iteration 0).
    boundaries: Vec<usize>,
    /// Active shard set per epoch, ascending within each epoch.
    active: Vec<Vec<usize>>,
    /// Restart boundaries, ascending, deduplicated.
    restarts: Vec<usize>,
}

impl MembershipSchedule {
    /// Full membership of `shards` shards throughout — the schedule of the
    /// empty plan.
    pub fn trivial(shards: usize) -> Arc<Self> {
        Self::resolve(&MembershipPlan::empty(), shards).expect("empty plan is always valid")
    }

    /// Resolves a plan against `shards` shards, checking every event is
    /// legal: shards in range, iterations ≥ 1, leave only while active, join
    /// only while inactive, and the active set never empties.
    pub fn resolve(plan: &MembershipPlan, shards: usize) -> Result<Arc<Self>, String> {
        assert!(shards > 0, "schedule needs at least one shard");
        // A shard whose first event is Join starts inactive.
        let mut is_active = vec![true; shards];
        for ev in &plan.events {
            if ev.shard >= shards {
                return Err(format!("event `{ev}`: shard out of range (P = {shards})"));
            }
            if ev.iter == 0 {
                return Err(format!(
                    "event `{ev}`: events fire at iteration boundaries ≥ 1"
                ));
            }
        }
        for (s, active) in is_active.iter_mut().enumerate() {
            if let Some(first) = plan.events.iter().find(|ev| {
                ev.shard == s
                    && matches!(ev.action, MembershipAction::Join | MembershipAction::Leave)
            }) {
                if first.action == MembershipAction::Join {
                    *active = false;
                }
            }
        }
        if is_active.iter().all(|a| !a) {
            return Err("initial active set is empty".into());
        }

        let mut boundaries: Vec<usize> = plan
            .events
            .iter()
            .filter(|ev| ev.action != MembershipAction::Restart)
            .map(|ev| ev.iter)
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();

        let snapshot =
            |active: &[bool]| -> Vec<usize> { (0..shards).filter(|&s| active[s]).collect() };
        let mut active = vec![snapshot(&is_active)];
        for &b in &boundaries {
            for ev in plan.events.iter().filter(|ev| ev.iter == b) {
                match ev.action {
                    MembershipAction::Join => {
                        if is_active[ev.shard] {
                            return Err(format!("event `{ev}`: shard already active"));
                        }
                        is_active[ev.shard] = true;
                    }
                    MembershipAction::Leave => {
                        if !is_active[ev.shard] {
                            return Err(format!("event `{ev}`: shard already inactive"));
                        }
                        is_active[ev.shard] = false;
                    }
                    MembershipAction::Restart => {}
                }
            }
            let snap = snapshot(&is_active);
            if snap.is_empty() {
                return Err(format!("iteration {b}: active set empties"));
            }
            active.push(snap);
        }

        let mut restarts: Vec<usize> = plan
            .events
            .iter()
            .filter(|ev| ev.action == MembershipAction::Restart)
            .map(|ev| ev.iter)
            .collect();
        restarts.sort_unstable();
        restarts.dedup();

        Ok(Arc::new(Self {
            shards,
            boundaries,
            active,
            restarts,
        }))
    }

    /// Number of shards the schedule is resolved over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// `true` iff this is the full-membership schedule (no join/leave
    /// events): routing and serving take the exact pre-elastic paths.
    pub fn is_trivial(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// Number of epochs (`boundaries + 1`).
    pub fn epochs(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The epoch in force at iteration `iter`: the number of boundaries
    /// ≤ `iter`.
    pub fn epoch_at(&self, iter: usize) -> u32 {
        self.boundaries.partition_point(|&b| b <= iter) as u32
    }

    /// The iteration boundaries with membership events, ascending.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// The first iteration of epoch `e` (0 for epoch 0).
    pub fn epoch_start(&self, epoch: u32) -> usize {
        if epoch == 0 {
            0
        } else {
            self.boundaries[epoch as usize - 1]
        }
    }

    /// The active shard set under epoch `e`, ascending.
    pub fn active(&self, epoch: u32) -> &[usize] {
        &self.active[epoch as usize]
    }

    /// Whether `shard` is active under epoch `e`.
    pub fn is_active(&self, shard: usize, epoch: u32) -> bool {
        self.active(epoch).binary_search(&shard).is_ok()
    }

    /// The shard serving home shard `home`'s pairs under epoch `e`: `home`
    /// itself while active, else a deterministic fallback. The identity map
    /// under full membership.
    pub fn owner(&self, home: usize, epoch: u32) -> usize {
        assert!(home < self.shards, "home shard out of range");
        let active = self.active(epoch);
        if active.binary_search(&home).is_ok() {
            home
        } else {
            active[home % active.len()]
        }
    }

    /// Restart boundaries (iterations to checkpoint before), ascending.
    pub fn restarts(&self) -> &[usize] {
        &self.restarts
    }

    /// Home shards whose serving moves *from* `shard` at the transition into
    /// `epoch` (`shard` owned them under `epoch - 1`, someone else owns them
    /// now), paired with the new owner.
    pub fn handoffs_out(&self, shard: usize, epoch: u32) -> Vec<(usize, usize)> {
        assert!(epoch > 0, "epoch 0 has no predecessor");
        (0..self.shards)
            .filter_map(|home| {
                let before = self.owner(home, epoch - 1);
                let after = self.owner(home, epoch);
                (before == shard && after != shard).then_some((home, after))
            })
            .collect()
    }

    /// Home shards whose serving moves *to* `shard` at the transition into
    /// `epoch`, paired with the previous owner.
    pub fn handoffs_in(&self, shard: usize, epoch: u32) -> Vec<(usize, usize)> {
        assert!(epoch > 0, "epoch 0 has no predecessor");
        (0..self.shards)
            .filter_map(|home| {
                let before = self.owner(home, epoch - 1);
                let after = self.owner(home, epoch);
                (after == shard && before != shard).then_some((home, before))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity_forever() {
        let s = MembershipSchedule::trivial(3);
        assert!(s.is_trivial());
        assert_eq!(s.epochs(), 1);
        for iter in 0..10 {
            assert_eq!(s.epoch_at(iter), 0);
        }
        for home in 0..3 {
            assert_eq!(s.owner(home, 0), home);
        }
        assert_eq!(s.active(0), &[0, 1, 2]);
    }

    #[test]
    fn parse_display_roundtrip() {
        let text = "leave:1@2;join:1@4;restart:0@3";
        let plan = MembershipPlan::parse(text).unwrap();
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.to_string(), text);
        assert_eq!(MembershipPlan::parse(&plan.to_string()).unwrap(), plan);
        assert_eq!(
            MembershipPlan::parse("  ").unwrap(),
            MembershipPlan::empty()
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["leave1@2", "leave:x@2", "leave:1@x", "evict:1@2", "leave:1"] {
            assert!(MembershipPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn leave_and_rejoin_moves_ownership_and_back() {
        let plan = MembershipPlan::parse("leave:1@2;join:1@4").unwrap();
        let s = MembershipSchedule::resolve(&plan, 2).unwrap();
        assert_eq!(s.epochs(), 3);
        assert_eq!(s.boundaries(), &[2, 4]);
        assert_eq!(s.epoch_at(0), 0);
        assert_eq!(s.epoch_at(1), 0);
        assert_eq!(s.epoch_at(2), 1);
        assert_eq!(s.epoch_at(3), 1);
        assert_eq!(s.epoch_at(4), 2);
        assert_eq!(s.active(1), &[0]);
        assert_eq!(s.owner(1, 0), 1);
        assert_eq!(s.owner(1, 1), 0, "shard 0 absorbs shard 1's pairs");
        assert_eq!(s.owner(1, 2), 1, "rejoin restores ownership");
        assert_eq!(s.handoffs_out(1, 1), vec![(1, 0)]);
        assert_eq!(s.handoffs_in(0, 1), vec![(1, 1)]);
        assert_eq!(s.handoffs_out(0, 2), vec![(1, 1)]);
        assert_eq!(s.handoffs_in(1, 2), vec![(1, 0)]);
    }

    #[test]
    fn first_event_join_means_initially_inactive() {
        let plan = MembershipPlan::parse("join:2@3").unwrap();
        let s = MembershipSchedule::resolve(&plan, 3).unwrap();
        assert_eq!(s.active(0), &[0, 1]);
        assert!(!s.is_active(2, 0));
        assert_eq!(
            s.owner(2, 0),
            2 % 2,
            "inactive home falls back deterministically"
        );
        assert_eq!(s.active(1), &[0, 1, 2]);
        assert_eq!(s.owner(2, 1), 2);
    }

    #[test]
    fn restarts_do_not_bump_epochs() {
        let plan = MembershipPlan::parse("restart:0@3;leave:1@5").unwrap();
        let s = MembershipSchedule::resolve(&plan, 2).unwrap();
        assert_eq!(s.epochs(), 2);
        assert_eq!(s.boundaries(), &[5]);
        assert_eq!(s.restarts(), &[3]);
        assert_eq!(s.epoch_at(3), 0);
    }

    #[test]
    fn illegal_plans_are_rejected() {
        for (bad, shards) in [
            ("leave:5@2", 2),           // shard out of range
            ("leave:0@0", 2),           // iteration 0
            ("leave:0@2;leave:0@3", 2), // double leave
            ("leave:0@2;leave:1@2", 2), // active set empties
            ("join:0@2", 1),            // initially empty active set
        ] {
            let plan = MembershipPlan::parse(bad).unwrap();
            assert!(
                MembershipSchedule::resolve(&plan, shards).is_err(),
                "accepted `{bad}` over {shards} shards"
            );
        }
    }

    #[test]
    fn epoch_starts_tile_the_run() {
        let plan = MembershipPlan::parse("leave:1@2;join:1@4").unwrap();
        let s = MembershipSchedule::resolve(&plan, 2).unwrap();
        assert_eq!(s.epoch_start(0), 0);
        assert_eq!(s.epoch_start(1), 2);
        assert_eq!(s.epoch_start(2), 4);
    }
}
