//! Plain-text summary reports over recorded traces.
//!
//! [`Report`] is a small section/table/notes document rendered through
//! [`crate::stats::render_table`] — the one table formatter in the repo —
//! so every binary (`overhead`, `poseidon-node`, the example) prints
//! breakdowns the same way. [`summarize`] derives the Poseidon-relevant
//! digest from a set of [`Trace`]s: per-layer compute vs communication
//! time with the fraction of communication hidden under compute (WFBP's
//! whole point), and per-peer frame/byte tables from the transport
//! counters.

use super::{EventKind, Trace};
use crate::stats::render_table;

/// One titled block: an optional table plus free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Section {
    /// Section heading.
    pub title: String,
    /// Table header (empty = no table).
    pub header: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Lines printed after the table.
    pub notes: Vec<String>,
}

/// A multi-section plain-text report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    sections: Vec<Section>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a table section.
    pub fn table(&mut self, title: &str, header: &[&str], rows: Vec<Vec<String>>) -> &mut Self {
        self.sections.push(Section {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows,
            notes: Vec::new(),
        });
        self
    }

    /// Appends a note line to the most recent section (or a bare section
    /// when the report is empty).
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        if self.sections.is_empty() {
            self.sections.push(Section::default());
        }
        self.sections.last_mut().unwrap().notes.push(text.into());
        self
    }

    /// Renders every section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            if !s.title.is_empty() {
                out.push_str(&format!("== {} ==\n", s.title));
            }
            if !s.header.is_empty() {
                out.push_str(&render_table(&s.header, &s.rows));
            }
            for n in &s.notes {
                out.push_str(n);
                out.push('\n');
            }
        }
        out
    }
}

/// A closed span interval recovered from a track.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interval {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) a: u64,
}

/// Pairs begin/end events per lane (a per-lane stack, innermost-first).
pub(crate) fn close_spans(track: &super::Track, want: &str) -> Vec<Interval> {
    let mut stacks: Vec<(u32, Vec<(u64, u64)>)> = Vec::new();
    let mut out = Vec::new();
    for ev in &track.events {
        if ev.name != want {
            continue;
        }
        let stack = match stacks.iter_mut().find(|(l, _)| *l == ev.lane) {
            Some((_, s)) => s,
            None => {
                stacks.push((ev.lane, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ev.kind {
            EventKind::Begin => stack.push((ev.ts_ns, ev.a)),
            EventKind::End => {
                if let Some((start, a)) = stack.pop() {
                    out.push(Interval {
                        start,
                        end: ev.ts_ns,
                        a,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Merges intervals into a disjoint sorted union.
fn union(mut iv: Vec<Interval>) -> Vec<(u64, u64)> {
    iv.sort_by_key(|i| i.start);
    let mut out: Vec<(u64, u64)> = Vec::new();
    for i in iv {
        match out.last_mut() {
            Some((_, end)) if i.start <= *end => *end = (*end).max(i.end),
            _ => out.push((i.start, i.end)),
        }
    }
    out
}

/// Overlap between `[s, e)` and a disjoint sorted union.
fn overlap(s: u64, e: u64, u: &[(u64, u64)]) -> u64 {
    u.iter()
        .map(|&(us, ue)| ue.min(e).saturating_sub(us.max(s)))
        .sum()
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Builds the standard digest from recorded traces: per-layer compute vs
/// comm with hidden-comm percentage, per-peer frame/byte tables, and
/// transport health counters.
pub fn summarize(traces: &[Trace]) -> Report {
    // layer → (fwd, bwd, comm, hidden) in ns.
    let mut layers: Vec<(u64, [u64; 4])> = Vec::new();
    let mut bump = |layer: u64, idx: usize, v: u64| {
        let slot = match layers.iter_mut().find(|(l, _)| *l == layer) {
            Some((_, s)) => s,
            None => {
                layers.push((layer, [0; 4]));
                &mut layers.last_mut().unwrap().1
            }
        };
        slot[idx] += v;
    };
    // (process, peer) → [tx frames, tx bytes, rx frames, rx bytes].
    let mut peers: Vec<((String, u64), [u64; 4])> = Vec::new();
    let mut dial_retries = 0u64;
    let mut timeouts = 0u64;
    let mut max_queue = 0u64;
    // Chaos-plane counters: injected faults and the recovery work that
    // healed them (reliability-layer retransmits, socket reconnects,
    // runtime receive retries).
    let mut faults = 0u64;
    let mut retransmits = 0u64;
    let mut reconnects = 0u64;
    let mut comm_retries = 0u64;
    let mut poisoned_frames = 0u64;

    for trace in traces {
        for track in &trace.tracks {
            let fwd = close_spans(track, "fwd");
            let bwd = close_spans(track, "bwd");
            let sync = close_spans(track, "wfbp.sync");
            let mut compute = fwd.clone();
            compute.extend_from_slice(&bwd);
            let compute_union = union(compute);
            for i in &fwd {
                bump(i.a, 0, i.end - i.start);
            }
            for i in &bwd {
                bump(i.a, 1, i.end - i.start);
            }
            for i in &sync {
                bump(i.a, 2, i.end - i.start);
                bump(i.a, 3, overlap(i.start, i.end, &compute_union));
            }
            for ev in &track.events {
                match (ev.kind, ev.name) {
                    (EventKind::Instant, "tx.frame") | (EventKind::Instant, "rx.frame") => {
                        let key = (trace.process_name.clone(), ev.a);
                        let slot = match peers.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, s)) => s,
                            None => {
                                peers.push((key, [0; 4]));
                                &mut peers.last_mut().unwrap().1
                            }
                        };
                        let off = if ev.name == "tx.frame" { 0 } else { 2 };
                        slot[off] += 1;
                        slot[off + 1] += ev.b;
                    }
                    (EventKind::Instant, "dial.retry") => dial_retries += 1,
                    (EventKind::Instant, "transport.timeout") => timeouts += 1,
                    (EventKind::Instant, "retransmit") => retransmits += 1,
                    (EventKind::Instant, "reconnect")
                    | (EventKind::Instant, "reconnect.accept") => reconnects += 1,
                    (EventKind::Instant, "comm.retry") => comm_retries += 1,
                    (EventKind::Instant, "frame.poisoned") => poisoned_frames += 1,
                    (EventKind::Instant, name) if name.starts_with("fault.") => faults += 1,
                    (EventKind::Counter, "rx.queue") => max_queue = max_queue.max(ev.b),
                    _ => {}
                }
            }
        }
    }

    let mut report = Report::new();

    layers.sort_by_key(|(l, _)| *l);
    if !layers.is_empty() {
        let rows: Vec<Vec<String>> = layers
            .iter()
            .map(|(l, s)| {
                let hidden_pct = if s[2] == 0 {
                    "-".to_string()
                } else {
                    format!("{:.0}%", 100.0 * s[3] as f64 / s[2] as f64)
                };
                vec![
                    l.to_string(),
                    ms(s[0]),
                    ms(s[1]),
                    ms(s[2]),
                    ms(s[3]),
                    hidden_pct,
                ]
            })
            .collect();
        report.table(
            "per-layer compute vs communication (summed over threads/iterations)",
            &[
                "layer",
                "fwd ms",
                "bwd ms",
                "comm ms",
                "hidden ms",
                "hidden %",
            ],
            rows,
        );
        let comm: u64 = layers.iter().map(|(_, s)| s[2]).sum();
        let hidden: u64 = layers.iter().map(|(_, s)| s[3]).sum();
        if comm > 0 {
            report.note(format!(
                "total comm {} ms, {:.0}% hidden under compute (WFBP overlap)",
                ms(comm),
                100.0 * hidden as f64 / comm as f64
            ));
        }
    }

    peers.sort();
    if !peers.is_empty() {
        let rows: Vec<Vec<String>> = peers
            .iter()
            .map(|((proc_name, peer), s)| {
                vec![
                    proc_name.clone(),
                    peer.to_string(),
                    s[0].to_string(),
                    s[1].to_string(),
                    s[2].to_string(),
                    s[3].to_string(),
                ]
            })
            .collect();
        report.table(
            "per-peer transport traffic",
            &[
                "process",
                "peer",
                "tx frames",
                "tx bytes",
                "rx frames",
                "rx bytes",
            ],
            rows,
        );
    }

    if dial_retries + timeouts + max_queue > 0 {
        report.note(format!(
            "transport health: {dial_retries} dial retries, {timeouts} recv timeouts, peak reader queue depth {max_queue}"
        ));
    }
    if faults + retransmits + reconnects + comm_retries + poisoned_frames > 0 {
        report.note(format!(
            "chaos & recovery: {faults} injected faults, {retransmits} retransmits, \
             {reconnects} socket reconnects, {comm_retries} receive retries, \
             {poisoned_frames} poisoned frames dropped"
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Event, Track};

    fn ev(ts_ns: u64, kind: EventKind, name: &'static str, lane: u32, a: u64, b: u64) -> Event {
        Event {
            ts_ns,
            kind,
            name,
            lane,
            a,
            b,
        }
    }

    #[test]
    fn summarize_computes_hidden_fraction() {
        let mut trace = Trace::new(0, "worker");
        trace.tracks.push(Track {
            tid: 1,
            name: "worker 0".into(),
            events: vec![
                // bwd of layer 0 runs 100..300; sync of layer 1 runs
                // 150..400 → 150 ns of its 250 ns hidden.
                ev(100, EventKind::Begin, "bwd", 0, 0, 0),
                ev(150, EventKind::Begin, "wfbp.sync", 2, 1, 0),
                ev(300, EventKind::End, "bwd", 0, 0, 0),
                ev(400, EventKind::End, "wfbp.sync", 2, 1, 0),
                ev(410, EventKind::Instant, "tx.frame", 0, 3, 64),
                ev(420, EventKind::Instant, "tx.frame", 0, 3, 64),
            ],
            dropped: 0,
        });
        let report = summarize(&[trace]);
        let text = report.render();
        assert!(text.contains("per-layer compute"), "{text}");
        assert!(text.contains("60%"), "{text}"); // 150/250 hidden
        assert!(text.contains("per-peer transport traffic"), "{text}");
        assert!(text.contains("128"), "{text}"); // 2 × 64 bytes to peer 3
    }

    #[test]
    fn summarize_counts_chaos_and_recovery_instants() {
        let mut trace = Trace::new(0, "worker");
        trace.tracks.push(Track {
            tid: 1,
            name: "worker 0".into(),
            events: vec![
                ev(10, EventKind::Instant, "fault.drop", 0, 2, 3),
                ev(20, EventKind::Instant, "fault.delay", 0, 2, 5),
                ev(30, EventKind::Instant, "retransmit", 0, 2, 3),
                ev(40, EventKind::Instant, "reconnect", 0, 2, 1),
                ev(50, EventKind::Instant, "reconnect.accept", 0, 0, 1),
                ev(60, EventKind::Instant, "comm.retry", 0, 0, 1),
                ev(70, EventKind::Instant, "frame.poisoned", 0, 0, 1),
            ],
            dropped: 0,
        });
        let text = summarize(&[trace]).render();
        assert!(
            text.contains(
                "chaos & recovery: 2 injected faults, 1 retransmits, \
                 2 socket reconnects, 1 receive retries, 1 poisoned frames dropped"
            ),
            "{text}"
        );
    }

    #[test]
    fn report_renders_sections_in_order() {
        let mut r = Report::new();
        r.table("first", &["a", "b"], vec![vec!["1".into(), "2".into()]]);
        r.note("a note");
        r.table("second", &["c"], vec![vec!["3".into()]]);
        let text = r.render();
        let first = text.find("first").unwrap();
        let note = text.find("a note").unwrap();
        let second = text.find("second").unwrap();
        assert!(first < note && note < second);
    }
}
