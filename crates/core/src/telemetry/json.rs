//! A minimal JSON reader for validating exported traces (std-only; the
//! container has no serde). Supports the full JSON grammar the exporter
//! emits — objects, arrays, strings with escapes, numbers, booleans, null —
//! which is all of JSON minus surrogate-pair escapes in strings.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\n\"quoted\"\tand \\ back";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
