//! Chrome `trace_event` JSON export.
//!
//! The output is the JSON-array form of the trace-event format, loadable in
//! chrome://tracing or [Perfetto](https://ui.perfetto.dev). Each [`Trace`]
//! becomes one *process* (pid = endpoint id for `poseidon-node`, so a
//! multi-process run merges into one file with one track group per OS
//! process); each [`Track`] becomes a thread track, and every per-layer
//! lane becomes its own sub-track — which is what makes WFBP visible: the
//! `bwd` spans sit on the worker's compute track while each layer's
//! `wfbp.sync` span sits on its own lane, overlapping the compute below it.
//!
//! Timestamps are microseconds (`ts`), as the format requires; span events
//! use `ph:"B"`/`ph:"E"`, instants `ph:"i"`, counter samples `ph:"C"`, and
//! process/thread labels ride on `ph:"M"` metadata events.

use super::json::{self, Value};
use super::{Event, EventKind, Trace};

/// Lane → tid packing: a track's lane `l` renders as tid
/// `tid * LANE_STRIDE + l`, keeping a thread's lanes adjacent in the viewer.
const LANE_STRIDE: u64 = 4096;

fn arg_keys(name: &str) -> (&'static str, &'static str) {
    match name {
        "iter" => ("worker", "iter"),
        "fwd" | "bwd" | "wfbp.sync" | "grad.ready" | "apply" | "serve.apply" => ("layer", "iter"),
        "chunk" => ("lo", "hi"),
        "tx.frame" | "rx.frame" => ("peer", "bytes"),
        "dial.retry" => ("peer", "attempt"),
        "transport.timeout" => ("endpoint", "waited_ms"),
        "rx.queue" => ("peer", "depth"),
        _ => ("a", "b"),
    }
}

fn push_event(out: &mut String, ev: &Event, pid: u32, tid: u64) {
    let ts_us = ev.ts_ns as f64 / 1000.0;
    let (ka, kb) = arg_keys(ev.name);
    match ev.kind {
        EventKind::Begin | EventKind::End => {
            let ph = if ev.kind == EventKind::Begin {
                "B"
            } else {
                "E"
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{ka}\":{},\"{kb}\":{}}}}}",
                json::escape(ev.name),
                ev.a,
                ev.b
            ));
        }
        EventKind::Instant => {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{ka}\":{},\"{kb}\":{}}}}}",
                json::escape(ev.name),
                ev.a,
                ev.b
            ));
        }
        EventKind::Counter => {
            // One counter track per (name, series); the sampled value is the
            // single arg, which chrome://tracing plots as a step graph.
            out.push_str(&format!(
                "{{\"name\":\"{} {}\",\"ph\":\"C\",\"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{kb}\":{}}}}}",
                json::escape(ev.name),
                ev.a,
                ev.b
            ));
        }
    }
}

fn push_meta(out: &mut String, which: &str, name: &str, pid: u32, tid: u64) {
    out.push_str(&format!(
        "{{\"name\":\"{which}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        json::escape(name)
    ));
}

/// Serialises `traces` (one per process) as one Chrome trace-event JSON
/// array. Per-lane span events are routed onto synthetic per-lane tids so
/// overlapping WFBP sync spans never misnest on a thread track.
pub fn to_chrome_json(traces: &[Trace]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for trace in traces {
        let mut out = String::new();
        push_meta(&mut out, "process_name", &trace.process_name, trace.pid, 0);
        parts.push(std::mem::take(&mut out));
        for track in &trace.tracks {
            let base = track.tid * LANE_STRIDE;
            push_meta(&mut out, "thread_name", &track.name, trace.pid, base);
            parts.push(std::mem::take(&mut out));
            // Label each lane sub-track after its first event.
            let mut lanes_seen: Vec<u32> = Vec::new();
            for ev in &track.events {
                if ev.lane != 0 && !lanes_seen.contains(&ev.lane) {
                    lanes_seen.push(ev.lane);
                    let label = format!("{} · {} L{}", track.name, ev.name, ev.lane - 1);
                    push_meta(
                        &mut out,
                        "thread_name",
                        &label,
                        trace.pid,
                        base + ev.lane as u64,
                    );
                    parts.push(std::mem::take(&mut out));
                }
            }
            for ev in &track.events {
                push_event(&mut out, ev, trace.pid, base + ev.lane as u64);
                parts.push(std::mem::take(&mut out));
            }
        }
    }
    format!("[\n{}\n]", parts.join(",\n"))
}

/// Merges several already-exported Chrome JSON arrays (one per process)
/// into one. Each part is parse-checked first, then merged textually so no
/// re-serialisation can perturb it.
pub fn merge_chrome_json(parts: &[String]) -> Result<String, String> {
    let mut inner: Vec<String> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        json::parse(part).map_err(|e| format!("trace part {i} does not parse: {e}"))?;
        let trimmed = part.trim();
        let body = trimmed
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("trace part {i} is not a JSON array"))?
            .trim();
        if !body.is_empty() {
            inner.push(body.to_string());
        }
    }
    Ok(format!("[\n{}\n]", inner.join(",\n")))
}

/// What [`validate`] measured about a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events (including metadata).
    pub events: usize,
    /// Completed B/E span pairs.
    pub spans: usize,
    /// Distinct (pid, tid) tracks carrying timed events.
    pub tracks: usize,
    /// Distinct process ids.
    pub pids: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
}

/// Structurally validates an exported trace: well-formed JSON array; every
/// event carries `ph`/`pid`/`tid`; per (pid, tid) track, `B`/`E` events are
/// balanced with matching names and `ts` is monotonic non-decreasing;
/// `C` counter samples carry at least one numeric series in `args`.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = json::parse(text)?;
    let events = doc.as_arr().ok_or("top level is not a JSON array")?;
    let mut stacks: Vec<((u64, u64), Vec<String>)> = Vec::new();
    let mut last_ts: Vec<((u64, u64), f64)> = Vec::new();
    let mut pids: Vec<u64> = Vec::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("event {i} missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("event {i} missing tid"))? as u64;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("event {i} missing ts"))?;
        let key = (pid, tid);
        match last_ts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, prev)) => {
                if ts < *prev {
                    return Err(format!(
                        "event {i}: ts {ts} goes backwards on track pid={pid} tid={tid} (prev {prev})"
                    ));
                }
                *prev = ts;
            }
            None => last_ts.push((key, ts)),
        }
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} missing name"))?;
        match ph {
            "B" => match stacks.iter_mut().find(|(k, _)| *k == key) {
                Some((_, stack)) => stack.push(name.to_string()),
                None => stacks.push((key, vec![name.to_string()])),
            },
            "E" => {
                let stack = stacks
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .map(|(_, s)| s)
                    .ok_or_else(|| {
                        format!("event {i}: E with no open span on pid={pid} tid={tid}")
                    })?;
                let open = stack.pop().ok_or_else(|| {
                    format!("event {i}: E with no open span on pid={pid} tid={tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes open span \"{open}\" on pid={pid} tid={tid}"
                    ));
                }
                spans += 1;
            }
            "i" => {}
            "C" => {
                // A counter sample with no numeric series plots nothing in
                // the viewer — treat it as a malformed export.
                let has_series = matches!(
                    ev.get("args"),
                    Some(Value::Obj(fields))
                        if fields.iter().any(|(_, v)| matches!(v, Value::Num(_)))
                );
                if !has_series {
                    return Err(format!(
                        "event {i}: C counter \"{name}\" has no numeric series in args"
                    ));
                }
                counters += 1;
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unbalanced trace: span \"{open}\" never closed on pid={pid} tid={tid}"
            ));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        spans,
        tracks: last_ts.len(),
        pids: pids.len(),
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Track;

    fn ev(ts_ns: u64, kind: EventKind, name: &'static str, lane: u32, a: u64, b: u64) -> Event {
        Event {
            ts_ns,
            kind,
            name,
            lane,
            a,
            b,
        }
    }

    fn sample_trace(pid: u32) -> Trace {
        let mut t = Trace::new(pid, format!("proc {pid}"));
        t.tracks.push(Track {
            tid: 1,
            name: "worker 0".into(),
            events: vec![
                ev(0, EventKind::Begin, "iter", 0, 0, 0),
                ev(100, EventKind::Begin, "bwd", 0, 2, 0),
                ev(150, EventKind::Begin, "wfbp.sync", 3, 2, 0),
                ev(200, EventKind::End, "bwd", 0, 2, 0),
                ev(210, EventKind::Instant, "tx.frame", 0, 1, 64),
                ev(220, EventKind::Counter, "rx.queue", 0, 1, 3),
                ev(400, EventKind::End, "wfbp.sync", 3, 2, 0),
                ev(500, EventKind::End, "iter", 0, 0, 0),
            ],
            dropped: 0,
        });
        t
    }

    #[test]
    fn export_is_valid_and_balanced() {
        let json_text = to_chrome_json(&[sample_trace(0)]);
        let stats = validate(&json_text).expect("valid trace");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.pids, 1);
        // iter/bwd on the base track, wfbp.sync on its lane track.
        assert_eq!(stats.tracks, 2);
        // The rx.queue sample renders as one ph:"C" counter event.
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn validate_rejects_counter_without_numeric_series() {
        let no_series = r#"[{"name":"q","ph":"C","ts":1,"pid":0,"tid":0,"args":{}}]"#;
        assert!(validate(no_series)
            .unwrap_err()
            .contains("no numeric series"));
        let non_numeric = r#"[{"name":"q","ph":"C","ts":1,"pid":0,"tid":0,"args":{"depth":"x"}}]"#;
        assert!(validate(non_numeric)
            .unwrap_err()
            .contains("no numeric series"));
        let ok = r#"[{"name":"q","ph":"C","ts":1,"pid":0,"tid":0,"args":{"depth":3}}]"#;
        assert_eq!(validate(ok).expect("valid counter").counters, 1);
    }

    #[test]
    fn lanes_get_their_own_tid_and_label() {
        let json_text = to_chrome_json(&[sample_trace(0)]);
        let doc = json::parse(&json_text).unwrap();
        let events = doc.as_arr().unwrap();
        let lane_meta = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .is_some_and(|n| n.contains("wfbp.sync L2"))
            })
            .expect("lane thread_name metadata");
        let lane_tid = lane_meta.get("tid").unwrap().as_num().unwrap() as u64;
        assert_eq!(lane_tid, LANE_STRIDE + 3);
    }

    #[test]
    fn merge_concatenates_processes() {
        let a = to_chrome_json(&[sample_trace(0)]);
        let b = to_chrome_json(&[sample_trace(1)]);
        let merged = merge_chrome_json(&[a, b]).unwrap();
        let stats = validate(&merged).unwrap();
        assert_eq!(stats.pids, 2);
        assert_eq!(stats.spans, 6);
    }

    #[test]
    fn validate_rejects_unbalanced_and_nonmonotonic() {
        let unbalanced = r#"[{"name":"x","ph":"B","ts":1,"pid":0,"tid":0,"args":{}}]"#;
        assert!(validate(unbalanced).unwrap_err().contains("never closed"));
        let backwards = r#"[
            {"name":"x","ph":"i","s":"t","ts":5,"pid":0,"tid":0,"args":{}},
            {"name":"y","ph":"i","s":"t","ts":4,"pid":0,"tid":0,"args":{}}
        ]"#;
        assert!(validate(backwards).unwrap_err().contains("backwards"));
        let crossed = r#"[
            {"name":"x","ph":"B","ts":1,"pid":0,"tid":0,"args":{}},
            {"name":"y","ph":"E","ts":2,"pid":0,"tid":0,"args":{}}
        ]"#;
        assert!(validate(crossed).unwrap_err().contains("closes open span"));
    }
}
