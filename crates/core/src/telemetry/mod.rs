//! The telemetry plane: structured tracing for the training runtime.
//!
//! Poseidon's argument is about *where time goes* — how much of each layer's
//! backward pass hides its own communication (WFBP), and how HybComm shrinks
//! bytes on the wire. This module records exactly that, with three design
//! constraints inherited from the training path:
//!
//! 1. **Zero dependencies.** `std` only; no tracing/serde crates.
//! 2. **Free when off.** Every record call starts with one relaxed atomic
//!    load and a branch; disabled, nothing else runs, no allocation, no
//!    clock read. Recording never touches the numerics, so training is
//!    bitwise identical with telemetry on or off (pinned by
//!    `crates/core/tests/telemetry_determinism.rs`).
//! 3. **Lock-free on the hot path.** Each thread appends events to its own
//!    thread-local buffer (bounded: past [`TelemetryConfig::capacity_per_thread`]
//!    events are counted as dropped, not recorded). The only lock is taken
//!    when a buffer is *flushed* into the global sink — at thread exit or at
//!    [`drain`] — never per event.
//!
//! # Event schema
//!
//! An [`Event`] is a fixed-size record: monotonic timestamp (ns since the
//! recorder epoch), a kind ([`EventKind`]), a `'static` name, a *lane*, and
//! two `u64` arguments. Lane 0 is the thread's own track; a non-zero lane
//! addresses a per-layer sub-track (lane = layer + 1), which is how
//! overlapping WFBP sync spans stay well-nested: compute spans (`fwd`,
//! `bwd`) live on the thread track while each layer's `wfbp.sync` span lives
//! on its own lane, so chrome://tracing renders the overlap as parallel
//! tracks. The simulator emits the *same* schema on its virtual clock
//! ([`crate::sim::simulate_with_trace`]), so simulated and real timelines are
//! directly comparable.
//!
//! Names in use: `iter`, `fwd`, `bwd`, `chunk` (batch-parallel worker
//! spans), `wfbp.sync`, `grad.ready`, `apply`, `serve.apply`, `tx.frame`,
//! `rx.frame`, `dial.retry`, `transport.timeout`, `rx.queue`.
//!
//! # Exporters
//!
//! [`chrome::to_chrome_json`] writes Chrome `trace_event` JSON (open in
//! chrome://tracing or Perfetto); [`report::summarize`] renders a plain-text
//! per-layer compute/comm/overlap table and a per-peer byte table.

pub mod chrome;
mod json;
pub mod report;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Recorder knobs, carried on
/// [`RuntimeConfig`](crate::runtime::RuntimeConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record events. Off by default; the training path is bitwise identical
    /// either way.
    pub enabled: bool,
    /// Per-thread event buffer bound; events past it are dropped (and
    /// counted in [`Track::dropped`]) rather than grown without limit.
    pub capacity_per_thread: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity_per_thread: DEFAULT_CAPACITY,
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with the default per-thread bound.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Default per-thread event bound (~24 MB/thread worst case).
pub const DEFAULT_CAPACITY: usize = 1 << 19;

/// What one event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens on this track/lane.
    Begin,
    /// The innermost open span on this track/lane closes.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (in [`Event::b`]).
    Counter,
}

/// One fixed-size telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the recorder epoch (monotonic clock; the simulator
    /// substitutes its virtual clock).
    pub ts_ns: u64,
    /// Span begin/end, instant, or counter sample.
    pub kind: EventKind,
    /// Event name (static so the hot path never allocates).
    pub name: &'static str,
    /// 0 = the thread's own track; `layer + 1` = that layer's sub-track.
    pub lane: u32,
    /// First argument (conventionally a layer or peer index).
    pub a: u64,
    /// Second argument (conventionally an iteration or byte count).
    pub b: u64,
}

/// One thread's (or one simulated resource's) recorded events, in order.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable per-process track id.
    pub tid: u64,
    /// Human-readable track label ("worker 0", "rx e2<-n1", ...).
    pub name: String,
    /// Events in recording order (timestamps non-decreasing).
    pub events: Vec<Event>,
    /// Events discarded because the buffer hit its bound.
    pub dropped: u64,
}

/// Everything one process recorded: its identity plus one [`Track`] per
/// thread that emitted events. Traces from several processes merge into one
/// Chrome trace ([`chrome::to_chrome_json`] takes a slice).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Process id for the Chrome export (`poseidon-node` uses the endpoint
    /// id so every OS process gets its own track group).
    pub pid: u32,
    /// Process label shown in the trace viewer.
    pub process_name: String,
    /// One per recording thread, ordered by `tid`.
    pub tracks: Vec<Track>,
}

impl Trace {
    /// An empty trace for a process, to be filled programmatically (the
    /// simulator does this; live runs use [`drain`]).
    pub fn new(pid: u32, process_name: impl Into<String>) -> Self {
        Self {
            pid,
            process_name: process_name.into(),
            tracks: Vec::new(),
        }
    }

    /// Total recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Global recorder state.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn sink() -> &'static Mutex<Vec<Track>> {
    static SINK: OnceLock<Mutex<Vec<Track>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn process() -> &'static Mutex<(u32, String)> {
    static PROCESS: OnceLock<Mutex<(u32, String)>> = OnceLock::new();
    PROCESS.get_or_init(|| Mutex::new((0, String::from("poseidon"))))
}

struct ThreadBuf {
    tid: u64,
    name: String,
    events: Vec<Event>,
    dropped: u64,
}

/// Thread-local wrapper whose `Drop` (run at thread exit) flushes the
/// buffer into the global sink, so short-lived compute threads lose nothing.
struct Registration(RefCell<Option<ThreadBuf>>);

impl Drop for Registration {
    fn drop(&mut self) {
        if let Some(buf) = self.0.borrow_mut().take() {
            flush_buf(buf);
        }
    }
}

thread_local! {
    static TL: Registration = const { Registration(RefCell::new(None)) };
}

fn flush_buf(buf: ThreadBuf) {
    if buf.events.is_empty() && buf.dropped == 0 {
        return;
    }
    let track = Track {
        tid: buf.tid,
        name: buf.name,
        events: buf.events,
        dropped: buf.dropped,
    };
    sink().lock().unwrap().push(track);
}

fn with_buf(f: impl FnOnce(&mut ThreadBuf)) {
    // `try_with` so an event fired during TLS teardown is dropped, not a
    // panic.
    let _ = TL.try_with(|reg| {
        let mut slot = reg.0.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread {tid}"));
            ThreadBuf {
                tid,
                name,
                events: Vec::new(),
                dropped: 0,
            }
        });
        f(buf);
    });
}

/// Nanoseconds since the recorder epoch (first use in this process).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Applies `cfg`: sets the per-thread bound and turns recording on or off.
pub fn configure(cfg: &TelemetryConfig) {
    CAPACITY.store(cfg.capacity_per_thread.max(1), Ordering::Relaxed);
    if cfg.enabled {
        enable();
    } else {
        disable();
    }
}

/// Starts recording. Installs the [`poseidon_nn::probe`] hook so per-layer
/// forward/backward and batch-worker spans flow into the same recorder.
pub fn enable() {
    poseidon_nn::probe::install(nn_probe);
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording. Events already buffered stay until [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is on. The hot-path check every record call makes.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Labels this process's trace (pid + name) for the Chrome export.
pub fn set_process(pid: u32, name: impl Into<String>) {
    *process().lock().unwrap() = (pid, name.into());
}

/// Labels the *current thread's* track ("worker 0", "shard 3", ...). A
/// no-op when disabled.
pub fn set_thread_track(name: impl Into<String>) {
    if !is_enabled() {
        return;
    }
    let name = name.into();
    with_buf(|buf| buf.name = name);
}

#[inline]
fn record(kind: EventKind, name: &'static str, lane: u32, a: u64, b: u64) {
    if !is_enabled() {
        return;
    }
    let ts_ns = now_ns();
    let cap = CAPACITY.load(Ordering::Relaxed);
    with_buf(|buf| {
        if buf.events.len() >= cap {
            buf.dropped += 1;
        } else {
            buf.events.push(Event {
                ts_ns,
                kind,
                name,
                lane,
                a,
                b,
            });
        }
    });
}

/// Opens a span on the current thread's track.
#[inline]
pub fn span_begin(name: &'static str, a: u64, b: u64) {
    record(EventKind::Begin, name, 0, a, b);
}

/// Closes the innermost span on the current thread's track.
#[inline]
pub fn span_end(name: &'static str, a: u64, b: u64) {
    record(EventKind::End, name, 0, a, b);
}

/// Opens a span on per-layer lane `layer + 1` (overlap-safe: lanes render
/// as separate tracks, so WFBP sync spans for different layers may overlap).
#[inline]
pub fn span_begin_lane(name: &'static str, layer: u32, a: u64, b: u64) {
    record(EventKind::Begin, name, layer + 1, a, b);
}

/// Closes the innermost span on lane `layer + 1`.
#[inline]
pub fn span_end_lane(name: &'static str, layer: u32, a: u64, b: u64) {
    record(EventKind::End, name, layer + 1, a, b);
}

/// A point-in-time marker on the current thread's track.
#[inline]
pub fn instant(name: &'static str, a: u64, b: u64) {
    record(EventKind::Instant, name, 0, a, b);
}

/// A counter sample: `value` at now, keyed by `name` (and `series` when a
/// name has several parallel series, e.g. one queue per peer).
#[inline]
pub fn counter(name: &'static str, series: u64, value: u64) {
    record(EventKind::Counter, name, 0, series, value);
}

/// RAII span on the thread track: begin now, end on drop.
pub struct Span {
    name: &'static str,
    a: u64,
    b: u64,
    armed: bool,
}

/// Opens a scope-bound span; the matching end is emitted when the returned
/// guard drops.
#[inline]
pub fn span(name: &'static str, a: u64, b: u64) -> Span {
    let armed = is_enabled();
    if armed {
        span_begin(name, a, b);
    }
    Span { name, a, b, armed }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            span_end(self.name, self.a, self.b);
        }
    }
}

/// Moves the current thread's buffered events into the global sink without
/// waiting for thread exit. The main thread calls this before [`drain`].
pub fn flush_thread() {
    let _ = TL.try_with(|reg| {
        if let Some(buf) = reg.0.borrow_mut().take() {
            flush_buf(buf);
        }
    });
}

/// Collects everything recorded so far into a [`Trace`] and resets the
/// sink. Flushes the calling thread first; other *live* threads must have
/// flushed (worker/server threads are joined before the runtime drains, and
/// thread exit flushes automatically).
pub fn drain() -> Trace {
    flush_thread();
    let mut tracks: Vec<Track> = std::mem::take(&mut *sink().lock().unwrap());
    tracks.sort_by_key(|t| t.tid);
    let (pid, process_name) = process().lock().unwrap().clone();
    Trace {
        pid,
        process_name,
        tracks,
    }
}

/// The [`poseidon_nn::probe`] hook: maps nn probe events onto recorder
/// spans. Installed once by [`enable`].
fn nn_probe(ev: poseidon_nn::probe::ProbeEvent) {
    use poseidon_nn::probe::ProbeEvent as P;
    match ev {
        P::ForwardBegin { layer } => span_begin("fwd", layer as u64, 0),
        P::ForwardEnd { layer } => span_end("fwd", layer as u64, 0),
        P::BackwardBegin { layer } => span_begin("bwd", layer as u64, 0),
        P::BackwardEnd { layer } => span_end("bwd", layer as u64, 0),
        P::ChunkBegin { lo, hi } => span_begin("chunk", lo as u64, hi as u64),
        P::ChunkEnd { lo, hi } => span_end("chunk", lo as u64, hi as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Telemetry state is process-global; unit tests here serialise on one
    // lock so `cargo test`'s thread pool cannot interleave enable/drain.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = test_lock();
        disable();
        let _ = drain();
        span_begin("fwd", 0, 0);
        span_end("fwd", 0, 0);
        instant("x", 1, 2);
        let trace = drain();
        assert_eq!(trace.event_count(), 0);
    }

    #[test]
    fn spans_and_counters_round_trip_through_drain() {
        let _g = test_lock();
        configure(&TelemetryConfig::enabled());
        let _ = drain();
        set_thread_track("unit-test");
        span_begin("iter", 0, 7);
        {
            let _s = span("fwd", 3, 7);
            counter("rx.queue", 1, 5);
        }
        span_begin_lane("wfbp.sync", 2, 2, 7);
        span_end_lane("wfbp.sync", 2, 2, 7);
        span_end("iter", 0, 7);
        disable();
        let trace = drain();
        let track = trace
            .tracks
            .iter()
            .find(|t| t.name == "unit-test")
            .expect("track");
        let kinds: Vec<EventKind> = track.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Begin,
                EventKind::Counter,
                EventKind::End,
                EventKind::Begin,
                EventKind::End,
                EventKind::End,
            ]
        );
        assert!(track.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let sync = &track.events[4];
        assert_eq!(sync.lane, 3); // layer 2 → lane 3
        assert_eq!(track.dropped, 0);
    }

    #[test]
    fn buffer_bound_counts_drops_instead_of_growing() {
        let _g = test_lock();
        configure(&TelemetryConfig {
            enabled: true,
            capacity_per_thread: 4,
        });
        let _ = drain();
        for i in 0..10 {
            instant("x", i, 0);
        }
        disable();
        CAPACITY.store(DEFAULT_CAPACITY, Ordering::Relaxed);
        let trace = drain();
        let track = trace.tracks.iter().find(|t| !t.events.is_empty()).unwrap();
        assert_eq!(track.events.len(), 4);
        assert_eq!(track.dropped, 6);
    }

    #[test]
    fn spawned_threads_flush_on_exit() {
        let _g = test_lock();
        configure(&TelemetryConfig::enabled());
        let _ = drain();
        std::thread::spawn(|| {
            set_thread_track("spawned");
            instant("hello", 0, 0);
        })
        .join()
        .unwrap();
        disable();
        let trace = drain();
        assert!(trace.tracks.iter().any(|t| t.name == "spawned"));
    }
}
