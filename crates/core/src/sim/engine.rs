//! The discrete-event iteration simulator.
//!
//! One BSP training iteration unfolds as events over shared resources:
//! per-node GPU (compute), PCIe memcpy engine, a CPU/transform stream
//! (server applies, SF reconstruction, quantization), and the NIC pair
//! modelled by [`poseidon_netsim::Network`]. Backward completion of layer `l`
//! triggers its `SyncReady` event (immediately under WFBP, after the whole
//! backward under the sequential scheduler); gradients then flow through the
//! scheme chosen by the coordinator, and the iteration ends when compute and
//! every layer's synchronisation have finished on every node (the completion
//! vector of Section 4.1).

use crate::config::ClusterConfig;
use crate::config::Codec;
use crate::config::CommScheme;
use crate::config::Scheduler;
use crate::coordinator::Coordinator;
use crate::sim::profile::{LayerTimes, SimConfig};
use crate::telemetry::{Event, EventKind, Trace, Track};
use poseidon_netsim::{EventQueue, FlowNetwork, LinkConfig, Network, NodeId, Resource};
use poseidon_nn::zoo::ModelSpec;
use std::collections::HashMap;

/// Wire overhead per message (framing + header), bytes.
const MSG_OVERHEAD: u64 = 16;

/// What the simulator reports for one steady-state iteration.
#[derive(Clone, Debug)]
pub struct IterationReport {
    /// Wall-clock of the measured iteration.
    pub iter_time_s: f64,
    /// GPU compute time per node (forward + backward).
    pub compute_s: f64,
    /// Cluster throughput, images/sec.
    pub throughput_ips: f64,
    /// Calibrated single-node native throughput (the speedup baseline).
    pub single_node_ips: f64,
    /// `throughput / single_node_ips`.
    pub speedup: f64,
    /// Fraction of the iteration the GPU spends stalled.
    pub stall_fraction: f64,
    /// Per-node network traffic of the iteration, in gigabits.
    pub per_node_gbit: Vec<f64>,
    /// Scheme chosen per trainable layer: `(layer name, scheme)`.
    pub schemes: Vec<(String, CommScheme)>,
}

/// Collects telemetry events on the *virtual* clock while the simulator
/// runs, so simulated timelines use the exact schema (and exporters) of the
/// live runtime. Track `w` (`w < p`) is node `w`'s GPU/NIC; track `p + s` is
/// node `s`'s CPU/transform stream (server applies). Only the measured
/// (last) iteration records.
struct SimTracer {
    recording: bool,
    iter: u64,
    tracks: Vec<Vec<Event>>,
}

/// Virtual seconds → recorder nanoseconds.
fn secs_to_ns(t: f64) -> u64 {
    (t.max(0.0) * 1e9).round() as u64
}

impl SimTracer {
    fn new(p: usize) -> Self {
        Self {
            recording: false,
            iter: 0,
            tracks: vec![Vec::new(); 2 * p],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        track: usize,
        kind: EventKind,
        name: &'static str,
        lane: u32,
        a: u64,
        b: u64,
        t: f64,
    ) {
        if !self.recording {
            return;
        }
        self.tracks[track].push(Event {
            ts_ns: secs_to_ns(t),
            kind,
            name,
            lane,
            a,
            b,
        });
    }

    fn span(&mut self, track: usize, name: &'static str, lane: u32, a: u64, start: f64, end: f64) {
        let b = self.iter;
        self.push(track, EventKind::Begin, name, lane, a, b, start);
        self.push(track, EventKind::End, name, lane, a, b, end);
    }

    /// Assembles the recorded tracks into a [`Trace`] (events time-sorted;
    /// ties keep insertion order, which was chosen Begin-first/End-last).
    fn into_trace(self, p: usize, model: &str) -> Trace {
        let mut trace = Trace::new(0, format!("sim {model}"));
        for (i, mut events) in self.tracks.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            events.sort_by_key(|e| e.ts_ns);
            let name = if i < p {
                format!("node {i}")
            } else {
                format!("node {} cpu", i - p)
            };
            trace.tracks.push(Track {
                tid: i as u64 + 1,
                name,
                events,
                dropped: 0,
            });
        }
        trace
    }
}

#[derive(Clone, Debug)]
enum Ev {
    /// Layer `l`'s gradients are complete on `worker`; begin its part of the
    /// synchronisation.
    SyncReady { layer: usize, worker: usize },
    /// One worker's gradient chunk arrived at its shard.
    GradArrive { layer: usize, chunk: usize },
    /// The shard finished applying a chunk's aggregated update.
    ApplyDone { layer: usize, chunk: usize },
    /// Fresh parameters arrived back at a worker.
    PullArrive {
        layer: usize,
        chunk: usize,
        worker: usize,
    },
    /// A peer's SF batch arrived at a worker (SFB).
    SfArrive { layer: usize, at: usize },
    /// A worker finished reconstructing a layer from factors (SFB).
    ReconDone { layer: usize, at: usize },
    /// A ring partial sum for `chunk` arrived at worker `at` (REDUCE hop).
    RingReduce {
        layer: usize,
        chunk: usize,
        at: usize,
    },
    /// The folded ring value for `chunk` arrived at worker `at` (DISTRIBUTE).
    RingShare {
        layer: usize,
        chunk: usize,
        at: usize,
    },
    /// A tree contribution for `chunk` arrived at node `at` en route to the
    /// root (interior nodes relay without folding, as in the live runtime).
    TreeGather {
        layer: usize,
        chunk: usize,
        at: usize,
    },
    /// The root's folded value for `chunk` arrived at node `at` (broadcast).
    TreeCast {
        layer: usize,
        chunk: usize,
        at: usize,
    },
}

/// Per-layer synchronisation plan derived from the coordinator.
#[derive(Clone, Debug)]
struct LayerPlan {
    scheme: CommScheme,
    /// The gradient codec this layer's frames ride (identity unless the
    /// codec policy compresses it); wire bytes below are priced through it.
    codec: Codec,
    /// `(shard, wire bytes incl. overhead, dense payload bytes)` per chunk
    /// for PS-style and collective paths.
    chunks: Vec<(usize, u64, u64)>,
    /// Dense flattened parameter bytes.
    dense_bytes: u64,
    /// SF one-way message bytes (FC layers).
    sf_bytes: u64,
    /// FC shape, if any.
    fc_shape: Option<(usize, usize)>,
}

struct SimState<'a> {
    cfg: &'a SimConfig,
    p: usize,
    batch: usize,
    gpus: usize,
    net: Network,
    fair: Option<FlowNetwork<Ev>>,
    gpu_compute_end: f64,
    memcpy: Vec<Resource>,
    cpu: Vec<Resource>,
    pcie: Vec<Resource>,
    plans: HashMap<usize, LayerPlan>,
    // progress
    grad_counts: HashMap<(usize, usize), usize>,
    pull_remaining: HashMap<(usize, usize), usize>,
    chunks_remaining: HashMap<(usize, usize), usize>,
    sf_counts: HashMap<(usize, usize), usize>,
    /// Local gradient ready time per (layer, worker) — collective schemes.
    coll_ready: HashMap<(usize, usize), f64>,
    /// Ring REDUCE hops that arrived before the local gradient was ready,
    /// stashed by (layer, chunk, worker) → arrival time.
    coll_pending: HashMap<(usize, usize, usize), f64>,
    /// Contributions gathered at the tree root per (layer, chunk).
    tree_counts: HashMap<(usize, usize), usize>,
    /// Aggregations already applied (late straggler pushes are discarded).
    applied: std::collections::HashSet<(usize, usize)>,
    /// SFB reconstructions already started per (layer, worker).
    reconstructed: std::collections::HashSet<(usize, usize)>,
    layer_done: f64,
    done_count: usize,
    expected_done: usize,
    tracer: Option<SimTracer>,
}

impl SimState<'_> {
    fn charge_memcpy(&self) -> bool {
        self.cfg.unoverlapped_memcpy
    }

    fn move_dur(&self, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.memcpy_bytes_per_s + self.cfg.per_move_overhead_s
    }

    fn mark_layer_worker_done(&mut self, t: f64) {
        self.layer_done = self.layer_done.max(t);
        self.done_count += 1;
    }

    /// `true` iff `worker` is a straggler whose participation is dropped:
    /// the rest of the cluster neither waits for its updates nor for its
    /// iteration completion (it still receives parameters).
    fn is_dropped(&self, worker: usize) -> bool {
        matches!(self.cfg.straggler, Some((node, _)) if self.cfg.drop_stragglers && node == worker)
    }

    /// Gradient contributions required before a PS-style aggregate applies.
    fn required_pushes(&self) -> usize {
        if self.cfg.drop_stragglers && self.cfg.straggler.is_some() && self.p > 1 {
            self.p - 1
        } else {
            self.p
        }
    }

    /// Peer SF batches required at `at` before reconstruction starts.
    fn required_sf(&self, at: usize) -> usize {
        let base = self.p - 1;
        match self.cfg.straggler {
            Some((node, _)) if self.cfg.drop_stragglers && node != at && base > 0 => base - 1,
            _ => base,
        }
    }

    /// Local multi-GPU aggregation of `bytes` onto the node's leader GPU
    /// (G−1 device-to-device copies over PCIe); identity when G = 1.
    fn local_aggregate(&mut self, node: usize, ready: f64, bytes: u64) -> f64 {
        if self.gpus <= 1 {
            return ready;
        }
        let dur = (self.gpus - 1) as f64 * bytes as f64 / self.cfg.pcie_bytes_per_s;
        self.pcie[node].reserve(ready, dur).1
    }

    /// Re-distribution of fresh parameters from the leader GPU to the node's
    /// other GPUs; identity when G = 1.
    fn local_distribute(&mut self, node: usize, ready: f64, bytes: u64) -> f64 {
        self.local_aggregate(node, ready, bytes)
    }

    /// Dispatches a transfer under the configured bandwidth model: FIFO NIC
    /// queues schedule the arrival event eagerly; the fair-share model
    /// registers a fluid flow whose completion the main loop turns into the
    /// event.
    fn send(
        &mut self,
        queue: &mut EventQueue<Ev>,
        ready: f64,
        src: usize,
        dst: usize,
        bytes: u64,
        ev: Ev,
    ) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.push(
                src,
                EventKind::Instant,
                "tx.frame",
                0,
                dst as u64,
                bytes,
                ready,
            );
        }
        match self.fair.as_mut() {
            Some(fair) => {
                fair.add_flow(ready, src, dst, bytes, ev);
            }
            None => {
                let arrive = self.net.transfer(ready, NodeId(src), NodeId(dst), bytes);
                queue.schedule_at(arrive, ev);
            }
        }
    }
}

/// Simulates `spec` under `cfg` and reports the steady-state iteration.
pub fn simulate(spec: &ModelSpec, cfg: &SimConfig) -> IterationReport {
    simulate_inner(spec, cfg, false).0
}

/// Like [`simulate`], but also records the measured iteration as a
/// [`Trace`] on the simulator's virtual clock — the same event schema the
/// live runtime emits, so [`crate::telemetry::chrome::to_chrome_json`] and
/// [`crate::telemetry::report::summarize`] work on simulated timelines too.
pub fn simulate_with_trace(spec: &ModelSpec, cfg: &SimConfig) -> (IterationReport, Trace) {
    let (report, trace) = simulate_inner(spec, cfg, true);
    (report, trace.expect("tracing requested"))
}

/// Like [`simulate_with_trace`], but replays the recorded timeline into a
/// [`crate::metrics::MetricsSnapshot`] carrying the same metric families a
/// live mesh serves at `--metrics-addr` (step/sync-wait/apply histograms,
/// per-peer frame/byte counters) — so a simulated cluster is directly
/// diffable against a real scrape.
pub fn simulate_with_metrics(
    spec: &ModelSpec,
    cfg: &SimConfig,
) -> (IterationReport, crate::metrics::MetricsSnapshot) {
    let (report, trace) = simulate_with_trace(spec, cfg);
    let snapshot = crate::metrics::metrics_from_trace(std::slice::from_ref(&trace));
    (report, snapshot)
}

fn simulate_inner(
    spec: &ModelSpec,
    cfg: &SimConfig,
    trace: bool,
) -> (IterationReport, Option<Trace>) {
    let p = cfg.nodes;
    let gpus = cfg.gpus_per_node.max(1);
    let batch = cfg.batch_per_node.unwrap_or(spec.default_batch);
    // A node's effective batch is the sum over its GPUs — this is what the
    // cost model sees (more SFs per node), making PS more attractive for
    // multi-GPU nodes exactly as in the paper.
    let node_batch = batch * gpus;
    let cluster = ClusterConfig {
        workers: p,
        servers: p,
        batch_per_worker: node_batch,
        colocated: true,
    };
    let coordinator = Coordinator::from_spec(spec, cluster, cfg.policy, cfg.partition)
        .with_codec_policy(cfg.codec_policy);
    // Each GPU computes its own per-GPU batch in parallel.
    let times = LayerTimes::derive(spec, batch, cfg.gpu_default_flops);
    let single_node_ips = batch as f64 / times.total();

    // Build per-layer plans.
    let mut plans: HashMap<usize, LayerPlan> = HashMap::new();
    for (l, scheme) in coordinator.scheme_assignment() {
        let info = &coordinator.layers()[l];
        let dense_bytes = info.param_elems as u64 * 4;
        let sf_bytes = info
            .fc_shape
            .map(|(m, n)| (node_batch * (m + n)) as u64 * 4 + MSG_OVERHEAD)
            .unwrap_or(0);
        let codec = coordinator.best_codec(l);
        let chunks: Vec<(usize, u64, u64)> = match scheme {
            // Collectives reuse the PS chunk table as their segment tiling,
            // exactly like the live Syncer does; wire bytes are priced
            // through the layer's codec, the dense bytes drive fold costs.
            CommScheme::Ps | CommScheme::Ring | CommScheme::Tree => coordinator
                .chunk_table()
                .layer_chunks(l)
                .iter()
                .map(|c| {
                    (
                        c.shard,
                        codec.payload_bytes(c.len) as u64 + MSG_OVERHEAD,
                        c.bytes(),
                    )
                })
                .collect(),
            CommScheme::AdamSf | CommScheme::Sfb => Vec::new(),
        };
        plans.insert(
            l,
            LayerPlan {
                scheme,
                codec,
                chunks,
                dense_bytes,
                sf_bytes,
                fc_shape: info.fc_shape,
            },
        );
    }

    let mut state = SimState {
        cfg,
        p,
        batch: node_batch,
        gpus,
        net: Network::new(
            p,
            LinkConfig {
                bandwidth_gbps: cfg.bandwidth_gbps * cfg.bandwidth_efficiency,
                latency_s: cfg.latency_s,
            },
        ),
        fair: cfg
            .fair_share
            .then(|| FlowNetwork::new(p, cfg.bandwidth_gbps * cfg.bandwidth_efficiency)),
        gpu_compute_end: 0.0,
        memcpy: vec![Resource::new(); p],
        cpu: vec![Resource::new(); p],
        pcie: vec![Resource::new(); p],
        plans,
        grad_counts: HashMap::new(),
        pull_remaining: HashMap::new(),
        chunks_remaining: HashMap::new(),
        sf_counts: HashMap::new(),
        coll_ready: HashMap::new(),
        coll_pending: HashMap::new(),
        tree_counts: HashMap::new(),
        applied: std::collections::HashSet::new(),
        reconstructed: std::collections::HashSet::new(),
        layer_done: 0.0,
        done_count: 0,
        expected_done: 0,
        tracer: trace.then(|| SimTracer::new(p)),
    };

    let mut gpu: Vec<Resource> = vec![Resource::new(); p];
    let iterations = 3usize;
    let mut iter_start = 0.0f64;
    let mut measured = (0.0f64, 0.0f64); // (start, end) of last iteration

    for it in 0..iterations {
        if it == iterations - 1 {
            state.net.ledger_mut().reset();
            if let Some(fair) = state.fair.as_mut() {
                fair.ledger_mut().reset();
            }
        }
        if let Some(tr) = state.tracer.as_mut() {
            tr.recording = it == iterations - 1;
            tr.iter = it as u64;
            for w in 0..p {
                tr.push(
                    w,
                    EventKind::Begin,
                    "iter",
                    0,
                    w as u64,
                    it as u64,
                    iter_start,
                );
            }
        }
        // Compute schedule: forward then backward on every GPU; an injected
        // straggler's compute is uniformly slowed down.
        let mut bwd_done = vec![vec![0.0f64; spec.layers.len()]; p];
        let mut compute_end = iter_start;
        for (w, g) in gpu.iter_mut().enumerate() {
            let slow = match cfg.straggler {
                Some((node, factor)) if node == w => factor,
                _ => 1.0,
            };
            let mut t = iter_start;
            for l in 0..spec.layers.len() {
                let (s, f) = g.reserve(t, times.fwd[l] * slow);
                if let Some(tr) = state.tracer.as_mut() {
                    tr.span(w, "fwd", 0, l as u64, s, f);
                }
                t = f;
            }
            for l in (0..spec.layers.len()).rev() {
                let (s, f) = g.reserve(t, times.bwd[l] * slow);
                if let Some(tr) = state.tracer.as_mut() {
                    tr.span(w, "bwd", 0, l as u64, s, f);
                }
                t = f;
                bwd_done[w][l] = f;
            }
            let dropped =
                matches!(cfg.straggler, Some((node, _)) if cfg.drop_stragglers && node == w);
            if !dropped {
                compute_end = compute_end.max(t);
            }
        }
        state.gpu_compute_end = compute_end;

        // Seed sync events in backward-completion order (top layer first).
        let mut queue: EventQueue<Ev> = EventQueue::new();
        // The event clock starts at 0; we keep absolute times throughout, so
        // re-create the queue per iteration with schedule_at on absolute time.
        state.layer_done = iter_start;
        state.done_count = 0;
        let active_nodes = (0..p).filter(|&w| !state.is_dropped(w)).count();
        state.expected_done = state.plans.len() * active_nodes;
        state.grad_counts.clear();
        state.pull_remaining.clear();
        state.chunks_remaining.clear();
        state.sf_counts.clear();
        state.coll_ready.clear();
        state.coll_pending.clear();
        state.tree_counts.clear();
        state.applied.clear();
        state.reconstructed.clear();

        let mut trainable: Vec<usize> = state.plans.keys().copied().collect();
        trainable.sort_unstable_by(|a, b| b.cmp(a)); // top-down
        for &l in &trainable {
            // Collectives have no partial-participation mode: every worker is
            // a link in the chain/tree, so a straggler still sends (and gates
            // the fold) even when its iteration completion is discounted.
            let collective = matches!(state.plans[&l].scheme, CommScheme::Ring | CommScheme::Tree);
            for (w, done) in bwd_done.iter().enumerate() {
                if state.is_dropped(w) && !collective {
                    // The dropped straggler's sends never happen; it lags
                    // behind on stale parameters and only consumes pulls.
                    continue;
                }
                let ready = match cfg.scheduler {
                    Scheduler::Wfbp => done[l],
                    Scheduler::Sequential => {
                        // The node finishes its own backward first.
                        done[0].max(done[spec.layers.len() - 1])
                    }
                };
                queue.schedule_at(
                    ready,
                    Ev::SyncReady {
                        layer: l,
                        worker: w,
                    },
                );
            }
        }

        // Drain events; under fair sharing, interleave fluid-flow completions
        // with queued events in global time order.
        loop {
            let qt = queue.peek_time();
            let ft = state.fair.as_mut().and_then(FlowNetwork::next_event_time);
            match (qt, ft) {
                (None, None) => break,
                _ => {
                    let qt_v = qt.unwrap_or(f64::INFINITY);
                    let ft_v = ft.unwrap_or(f64::INFINITY);
                    if ft_v < qt_v {
                        let done = state.fair.as_mut().expect("fair mode").advance(ft_v);
                        for ev in done {
                            queue.schedule_at(ft_v + cfg.latency_s, ev);
                        }
                    } else {
                        let (now, ev) = queue.pop().expect("queue non-empty");
                        if let Some(fair) = state.fair.as_mut() {
                            if fair.next_event_time().is_none_or(|t| t >= now) {
                                for done_ev in fair.advance(now.min(ft_v)) {
                                    queue.schedule_at(now + cfg.latency_s, done_ev);
                                }
                            }
                        }
                        step(&mut state, &mut queue, now, ev);
                    }
                }
            }
        }

        let iter_end = state.gpu_compute_end.max(state.layer_done);
        assert_eq!(
            state.done_count, state.expected_done,
            "not every layer synchronised on every node"
        );
        if std::env::var_os("POSEIDON_SIM_DEBUG").is_some() {
            eprintln!(
                "iter {it}: start {iter_start:.4} compute_end {:.4} sync_end {:.4} tx_busy[0] {:.4} cpu_busy[0] {:.4}",
                state.gpu_compute_end,
                state.layer_done,
                state.net.tx_busy(NodeId(0)),
                state.cpu[0].total_busy(),
            );
        }
        if let Some(tr) = state.tracer.as_mut() {
            for w in 0..p {
                tr.push(w, EventKind::End, "iter", 0, w as u64, it as u64, iter_end);
            }
        }
        measured = (iter_start, iter_end);
        iter_start = iter_end;
    }

    let (start, end) = measured;
    let iter_time = end - start;
    let compute = times.total();
    let active_nodes = match cfg.straggler {
        Some(_) if cfg.drop_stragglers && p > 1 => p - 1,
        _ => p,
    };
    let throughput = (active_nodes * node_batch) as f64 / iter_time;
    let ledger = match state.fair.as_ref() {
        Some(fair) => fair.ledger(),
        None => state.net.ledger(),
    };
    let report = IterationReport {
        iter_time_s: iter_time,
        compute_s: compute,
        throughput_ips: throughput,
        single_node_ips,
        speedup: throughput / single_node_ips,
        stall_fraction: (1.0 - compute / iter_time).max(0.0),
        per_node_gbit: (0..p)
            .map(|n| crate::stats::bytes_to_gbit(ledger.node_bytes(n)))
            .collect(),
        schemes: {
            let mut s: Vec<(usize, CommScheme)> = state
                .plans
                .iter()
                .map(|(&l, plan)| (l, plan.scheme))
                .collect();
            s.sort_unstable_by_key(|&(l, _)| l);
            s.into_iter()
                .map(|(l, scheme)| (coordinator.layers()[l].name.clone(), scheme))
                .collect()
        },
    };
    let trace = state.tracer.take().map(|tr| tr.into_trace(p, spec.name));
    (report, trace)
}

fn step(state: &mut SimState<'_>, queue: &mut EventQueue<Ev>, now: f64, ev: Ev) {
    let p = state.p;
    match ev {
        Ev::SyncReady { layer, worker: w } => {
            if let Some(tr) = state.tracer.as_mut() {
                let iter = tr.iter;
                tr.push(
                    w,
                    EventKind::Instant,
                    "grad.ready",
                    0,
                    layer as u64,
                    iter,
                    now,
                );
                tr.push(
                    w,
                    EventKind::Begin,
                    "wfbp.sync",
                    layer as u32 + 1,
                    layer as u64,
                    iter,
                    now,
                );
            }
            let plan = state.plans[&layer].clone();
            match plan.scheme {
                CommScheme::Ps => {
                    state.chunks_remaining.insert((layer, w), plan.chunks.len());
                    for (c, &(shard, bytes, dense)) in plan.chunks.iter().enumerate() {
                        let mut ready = state.local_aggregate(
                            w,
                            now,
                            plan.dense_bytes / plan.chunks.len() as u64,
                        );
                        if state.charge_memcpy() {
                            let dur = state.move_dur(plan.dense_bytes / plan.chunks.len() as u64);
                            ready = state.memcpy[w].reserve(ready, dur).1;
                        }
                        if plan.codec != Codec::Identity {
                            // Compression pass (error feedback + encode)
                            // before send, on the transform stream.
                            let qdur = 2.0 * dense as f64 / state.cfg.transform_flops;
                            ready = state.cpu[w].reserve(ready, qdur).1;
                        }
                        state.send(
                            queue,
                            ready,
                            w,
                            shard,
                            bytes,
                            Ev::GradArrive { layer, chunk: c },
                        );
                    }
                }
                CommScheme::Sfb => {
                    state.chunks_remaining.insert((layer, w), 1);
                    let mut ready = state.local_aggregate(w, now, plan.sf_bytes);
                    if state.charge_memcpy() {
                        let dur = state.move_dur(plan.sf_bytes);
                        ready = state.memcpy[w].reserve(ready, dur).1;
                    }
                    for v in 0..p {
                        if v == w {
                            continue;
                        }
                        state.send(
                            queue,
                            ready,
                            w,
                            v,
                            plan.sf_bytes,
                            Ev::SfArrive { layer, at: v },
                        );
                    }
                    if p == 1 {
                        // Degenerate single-node SFB: nothing to receive.
                        queue.schedule_at(now, Ev::ReconDone { layer, at: w });
                    }
                }
                CommScheme::Ring | CommScheme::Tree => {
                    state
                        .chunks_remaining
                        .entry((layer, w))
                        .or_insert(plan.chunks.len());
                    let mut ready = state.local_aggregate(w, now, plan.dense_bytes);
                    if state.charge_memcpy() {
                        let dur = state.move_dur(plan.dense_bytes);
                        ready = state.memcpy[w].reserve(ready, dur).1;
                    }
                    if plan.codec != Codec::Identity {
                        // Compression pass before seeding / contributing.
                        let qdur = 2.0 * plan.dense_bytes as f64 / state.cfg.transform_flops;
                        ready = state.cpu[w].reserve(ready, qdur).1;
                    }
                    state.coll_ready.insert((layer, w), ready);
                    match (plan.scheme, w) {
                        (CommScheme::Ring, 0) => {
                            // Worker 0 seeds the chain towards worker 1.
                            for (c, &(_, bytes, _)) in plan.chunks.iter().enumerate() {
                                state.send(
                                    queue,
                                    ready,
                                    0,
                                    1,
                                    bytes,
                                    Ev::RingReduce {
                                        layer,
                                        chunk: c,
                                        at: 1,
                                    },
                                );
                            }
                        }
                        (CommScheme::Ring, _) => {
                            // Replay REDUCE hops that outran our backward.
                            for c in 0..plan.chunks.len() {
                                if let Some(t) = state.coll_pending.remove(&(layer, c, w)) {
                                    ring_reduce_arrive(state, queue, t.max(ready), layer, c, w);
                                }
                            }
                        }
                        (_, 0) => {
                            // Tree root: fold any chunk whose contributions
                            // all arrived before our own gradient was ready.
                            for c in 0..plan.chunks.len() {
                                try_tree_fold(state, queue, ready, layer, c);
                            }
                        }
                        _ => {
                            let parent = (w - 1) / 2;
                            for (c, &(_, bytes, _)) in plan.chunks.iter().enumerate() {
                                state.send(
                                    queue,
                                    ready,
                                    w,
                                    parent,
                                    bytes,
                                    Ev::TreeGather {
                                        layer,
                                        chunk: c,
                                        at: parent,
                                    },
                                );
                            }
                        }
                    }
                }
                CommScheme::AdamSf => {
                    state.chunks_remaining.insert((layer, w), 1);
                    let owner = layer % p;
                    let mut ready = state.local_aggregate(w, now, plan.sf_bytes);
                    if state.charge_memcpy() {
                        let dur = state.move_dur(plan.sf_bytes);
                        ready = state.memcpy[w].reserve(ready, dur).1;
                    }
                    state.send(
                        queue,
                        ready,
                        w,
                        owner,
                        plan.sf_bytes,
                        Ev::GradArrive { layer, chunk: 0 },
                    );
                }
            }
        }
        Ev::GradArrive { layer, chunk } => {
            if state.applied.contains(&(layer, chunk)) {
                return; // late straggler push, dropped
            }
            let required = state.required_pushes();
            let count = state.grad_counts.entry((layer, chunk)).or_insert(0);
            *count += 1;
            if *count < required {
                return;
            }
            state.grad_counts.remove(&(layer, chunk));
            state.applied.insert((layer, chunk));
            let plan = state.plans[&layer].clone();
            let (shard, apply_dur) = match plan.scheme {
                CommScheme::Ps => {
                    let (shard, _, dense) = plan.chunks[chunk];
                    // Dense fold of P gradients (a lossy codec decompresses
                    // to dense before folding, so same cost).
                    (shard, p as f64 * dense as f64 / state.cfg.apply_bytes_per_s)
                }
                CommScheme::AdamSf => {
                    let (m, n) = plan.fc_shape.expect("Adam needs FC shape");
                    let recon = p as f64 * 2.0 * state.batch as f64 * m as f64 * n as f64
                        / state.cfg.transform_flops;
                    let fold = p as f64 * plan.dense_bytes as f64 / state.cfg.apply_bytes_per_s;
                    (layer % p, recon + fold)
                }
                CommScheme::Sfb => unreachable!("SFB has no server-side apply"),
                CommScheme::Ring | CommScheme::Tree => {
                    unreachable!("collectives never push to a shard")
                }
            };
            let (astart, done) = state.cpu[shard].reserve(now, apply_dur);
            if let Some(tr) = state.tracer.as_mut() {
                tr.span(p + shard, "serve.apply", 0, layer as u64, astart, done);
            }
            queue.schedule_at(done, Ev::ApplyDone { layer, chunk });
        }
        Ev::ApplyDone { layer, chunk } => {
            let plan = state.plans[&layer].clone();
            let (shard, pull_bytes) = match plan.scheme {
                // Lossy PS replies with the compressed delta: same wire
                // bytes as the push direction.
                CommScheme::Ps => {
                    let (shard, bytes, _) = plan.chunks[chunk];
                    (shard, bytes)
                }
                CommScheme::AdamSf => (layer % p, plan.dense_bytes + MSG_OVERHEAD),
                CommScheme::Sfb | CommScheme::Ring | CommScheme::Tree => unreachable!(),
            };
            state.pull_remaining.insert((layer, chunk), p);
            for w in 0..p {
                state.send(
                    queue,
                    now,
                    shard,
                    w,
                    pull_bytes,
                    Ev::PullArrive {
                        layer,
                        chunk,
                        worker: w,
                    },
                );
            }
        }
        Ev::PullArrive {
            layer,
            chunk,
            worker,
        } => {
            let plan = state.plans[&layer].clone();
            let mut done = now;
            if state.charge_memcpy() {
                let per_chunk = plan.dense_bytes / plan.chunks.len().max(1) as u64;
                let dur = state.move_dur(per_chunk);
                done = state.memcpy[worker].reserve(now, dur).1;
            }
            if plan.codec != Codec::Identity {
                // Decompress the pulled payload.
                let dq = plan.dense_bytes as f64 / state.cfg.transform_flops;
                done = state.cpu[worker].reserve(done, dq).1;
            }
            let rem = state
                .pull_remaining
                .get_mut(&(layer, chunk))
                .expect("pull bookkeeping");
            *rem -= 1;
            if *rem == 0 {
                state.pull_remaining.remove(&(layer, chunk));
            }
            let chunks_total = match plan.scheme {
                CommScheme::Ps => plan.chunks.len(),
                _ => 1,
            };
            let entry = state
                .chunks_remaining
                .entry((layer, worker))
                .or_insert(chunks_total);
            *entry -= 1;
            if *entry == 0 {
                state.chunks_remaining.remove(&(layer, worker));
                let done = state.local_distribute(worker, done, plan.dense_bytes);
                if !state.is_dropped(worker) {
                    if let Some(tr) = state.tracer.as_mut() {
                        let iter = tr.iter;
                        tr.push(
                            worker,
                            EventKind::End,
                            "wfbp.sync",
                            layer as u32 + 1,
                            layer as u64,
                            iter,
                            done,
                        );
                    }
                    state.mark_layer_worker_done(done);
                }
            }
        }
        Ev::SfArrive { layer, at } => {
            if state.reconstructed.contains(&(layer, at)) {
                return; // late straggler batch, dropped
            }
            let required = state.required_sf(at);
            let count = state.sf_counts.entry((layer, at)).or_insert(0);
            *count += 1;
            if *count < required {
                return;
            }
            state.sf_counts.remove(&(layer, at));
            state.reconstructed.insert((layer, at));
            let plan = &state.plans[&layer];
            let (m, n) = plan.fc_shape.expect("SFB needs FC shape");
            // Reconstruct P·K rank-1 updates (own factors included) on the
            // transform stream.
            let recon = p as f64 * 2.0 * state.batch as f64 * m as f64 * n as f64
                / state.cfg.transform_flops;
            let done = state.cpu[at].reserve(now, recon).1;
            queue.schedule_at(done, Ev::ReconDone { layer, at });
        }
        Ev::ReconDone { layer, at } => {
            let dense = state.plans[&layer].dense_bytes;
            let done = state.local_distribute(at, now, dense);
            if !state.is_dropped(at) {
                if let Some(tr) = state.tracer.as_mut() {
                    let iter = tr.iter;
                    tr.push(
                        at,
                        EventKind::End,
                        "wfbp.sync",
                        layer as u32 + 1,
                        layer as u64,
                        iter,
                        done,
                    );
                }
                state.mark_layer_worker_done(done);
            }
        }
        Ev::RingReduce { layer, chunk, at } => match state.coll_ready.get(&(layer, at)) {
            Some(&ready) => ring_reduce_arrive(state, queue, now.max(ready), layer, chunk, at),
            None => {
                // The predecessor ran ahead of this worker's backward; stash
                // the hop until our own contribution exists (satellite of the
                // live runtime's frame-stashing discipline).
                state.coll_pending.insert((layer, chunk, at), now);
            }
        },
        Ev::RingShare { layer, chunk, at } => {
            let plan = state.plans[&layer].clone();
            let (_, bytes, _) = plan.chunks[chunk];
            finish_collective_chunk(state, now, layer, chunk, at);
            let next = at + 1;
            if next != p - 1 {
                // Stop one short of the originator (worker P−1 already holds
                // the folded value).
                state.send(
                    queue,
                    now,
                    at,
                    next,
                    bytes,
                    Ev::RingShare {
                        layer,
                        chunk,
                        at: next,
                    },
                );
            }
        }
        Ev::TreeGather { layer, chunk, at } => {
            if at == 0 {
                *state.tree_counts.entry((layer, chunk)).or_insert(0) += 1;
                try_tree_fold(state, queue, now, layer, chunk);
            } else {
                // Interior nodes relay origin-tagged payloads unchanged.
                let (_, bytes, _) = state.plans[&layer].chunks[chunk];
                let parent = (at - 1) / 2;
                state.send(
                    queue,
                    now,
                    at,
                    parent,
                    bytes,
                    Ev::TreeGather {
                        layer,
                        chunk,
                        at: parent,
                    },
                );
            }
        }
        Ev::TreeCast { layer, chunk, at } => {
            let (_, bytes, _) = state.plans[&layer].chunks[chunk];
            finish_collective_chunk(state, now, layer, chunk, at);
            for child in [2 * at + 1, 2 * at + 2] {
                if child < p {
                    state.send(
                        queue,
                        now,
                        at,
                        child,
                        bytes,
                        Ev::TreeCast {
                            layer,
                            chunk,
                            at: child,
                        },
                    );
                }
            }
        }
    }
}

/// A ring REDUCE hop lands at `at`, whose local gradient is ready: fuse-add
/// the partial on the transform stream, then forward (or, at the chain's
/// end, fold and originate the DISTRIBUTE pass).
fn ring_reduce_arrive(
    state: &mut SimState<'_>,
    queue: &mut EventQueue<Ev>,
    now: f64,
    layer: usize,
    chunk: usize,
    at: usize,
) {
    let p = state.p;
    let (_, bytes, dense) = state.plans[&layer].chunks[chunk];
    let dur = dense as f64 / state.cfg.apply_bytes_per_s;
    let done = state.cpu[at].reserve(now, dur).1;
    if let Some(tr) = state.tracer.as_mut() {
        tr.span(p + at, "coll.fold", 0, layer as u64, now, done);
    }
    if at == p - 1 {
        // Chain complete: this worker holds the folded update; the broadcast
        // pass walks the ring from worker 0.
        finish_collective_chunk(state, done, layer, chunk, at);
        state.send(
            queue,
            done,
            at,
            0,
            bytes,
            Ev::RingShare {
                layer,
                chunk,
                at: 0,
            },
        );
    } else {
        state.send(
            queue,
            done,
            at,
            at + 1,
            bytes,
            Ev::RingReduce {
                layer,
                chunk,
                at: at + 1,
            },
        );
    }
}

/// Folds a tree chunk at the root once its own gradient and all `P−1`
/// origin contributions are present, then starts the downward broadcast.
fn try_tree_fold(
    state: &mut SimState<'_>,
    queue: &mut EventQueue<Ev>,
    now: f64,
    layer: usize,
    chunk: usize,
) {
    let Some(&ready) = state.coll_ready.get(&(layer, 0)) else {
        return;
    };
    if state.tree_counts.get(&(layer, chunk)).copied().unwrap_or(0) < state.p - 1 {
        return;
    }
    state.tree_counts.remove(&(layer, chunk));
    let p = state.p;
    let (_, bytes, dense) = state.plans[&layer].chunks[chunk];
    let dur = p as f64 * dense as f64 / state.cfg.apply_bytes_per_s;
    let start = now.max(ready);
    let done = state.cpu[0].reserve(start, dur).1;
    if let Some(tr) = state.tracer.as_mut() {
        tr.span(p, "coll.fold", 0, layer as u64, start, done);
    }
    finish_collective_chunk(state, done, layer, chunk, 0);
    for child in [1, 2] {
        if child < p {
            state.send(
                queue,
                done,
                0,
                child,
                bytes,
                Ev::TreeCast {
                    layer,
                    chunk,
                    at: child,
                },
            );
        }
    }
}

/// A collective worker received (or produced) the final value of one chunk;
/// when the last chunk lands, the layer is synchronised on that worker.
fn finish_collective_chunk(
    state: &mut SimState<'_>,
    t: f64,
    layer: usize,
    chunk: usize,
    worker: usize,
) {
    let _ = chunk;
    let plan = state.plans[&layer].clone();
    let entry = state
        .chunks_remaining
        .entry((layer, worker))
        .or_insert(plan.chunks.len());
    *entry -= 1;
    if *entry == 0 {
        state.chunks_remaining.remove(&(layer, worker));
        let done = state.local_distribute(worker, t, plan.dense_bytes);
        if !state.is_dropped(worker) {
            if let Some(tr) = state.tracer.as_mut() {
                let iter = tr.iter;
                tr.push(
                    worker,
                    EventKind::End,
                    "wfbp.sync",
                    layer as u32 + 1,
                    layer as u64,
                    iter,
                    done,
                );
            }
            state.mark_layer_worker_done(done);
        }
    }
}

/// Convenience: `(nodes, speedup)` for a node sweep of one system.
pub fn speedup_series(
    spec: &ModelSpec,
    mut make_cfg: impl FnMut(usize) -> SimConfig,
    nodes: &[usize],
) -> Vec<(usize, f64)> {
    nodes
        .iter()
        .map(|&n| {
            let cfg = make_cfg(n);
            let report = simulate(spec, &cfg);
            (n, report.speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::profile::System;
    use poseidon_nn::zoo;

    fn report(system: System, model: &ModelSpec, nodes: usize, bw: f64) -> IterationReport {
        simulate(model, &SimConfig::system(system, nodes, bw))
    }

    #[test]
    fn single_node_poseidon_matches_native_throughput() {
        let vgg = zoo::vgg19();
        let r = report(System::Poseidon, &vgg, 1, 40.0);
        assert!(
            (r.throughput_ips - 35.5).abs() / 35.5 < 0.02,
            "single-node Poseidon VGG19 = {} img/s, expected ~35.5",
            r.throughput_ips
        );
        assert!(
            r.per_node_gbit.iter().all(|&g| g == 0.0),
            "no network traffic on 1 node"
        );
    }

    #[test]
    fn single_node_caffe_ps_pays_memcpy_overhead() {
        let vgg = zoo::vgg19();
        let ps = report(System::CaffePs, &vgg, 1, 40.0);
        let psd = report(System::Poseidon, &vgg, 1, 40.0);
        assert!(
            ps.throughput_ips < 0.75 * psd.throughput_ips,
            "Caffe+PS ({}) should be well below Poseidon ({}) on one node",
            ps.throughput_ips,
            psd.throughput_ips
        );
    }

    #[test]
    fn poseidon_scales_near_linearly_on_vgg_at_40gbe() {
        let vgg = zoo::vgg19();
        let r = report(System::Poseidon, &vgg, 32, 40.0);
        assert!(
            r.speedup > 28.0,
            "Poseidon VGG19 at 32 nodes: {}x",
            r.speedup
        );
    }

    #[test]
    fn wfbp_beats_sequential_ps() {
        let vgg = zoo::vgg19();
        let seq = report(System::CaffePs, &vgg, 8, 40.0);
        let wfbp = report(System::WfbpPs, &vgg, 8, 40.0);
        assert!(
            wfbp.speedup > seq.speedup * 1.2,
            "WFBP {} vs sequential {}",
            wfbp.speedup,
            seq.speedup
        );
    }

    #[test]
    fn hybrid_beats_pure_ps_under_limited_bandwidth() {
        let vgg = zoo::vgg19();
        let ps = report(System::WfbpPs, &vgg, 16, 10.0);
        let psd = report(System::Poseidon, &vgg, 16, 10.0);
        assert!(
            psd.speedup > ps.speedup * 1.3,
            "Poseidon {} vs WFBP-PS {} at 10GbE",
            psd.speedup,
            ps.speedup
        );
        assert!(
            psd.speedup > 13.0,
            "Poseidon should stay near-linear: {}",
            psd.speedup
        );
    }

    #[test]
    fn tensorflow_hotspot_hurts_vgg() {
        let vgg = zoo::vgg19();
        let tf = report(System::TensorFlow, &vgg, 8, 40.0);
        let psd = report(System::Poseidon, &vgg, 8, 40.0);
        assert!(
            tf.speedup < 0.6 * psd.speedup,
            "TF {} should trail Poseidon {} badly on VGG19",
            tf.speedup,
            psd.speedup
        );
        assert!(tf.stall_fraction > psd.stall_fraction + 0.2);
    }

    #[test]
    fn adam_creates_load_imbalance() {
        let vgg = zoo::vgg19();
        let adam = report(System::Adam, &vgg, 8, 40.0);
        let even = report(System::WfbpPs, &vgg, 8, 40.0);
        let imbalance = |g: &[f64]| {
            let max = g.iter().cloned().fold(0.0f64, f64::max);
            let mean = g.iter().sum::<f64>() / g.len() as f64;
            max / mean
        };
        assert!(
            imbalance(&adam.per_node_gbit) > 1.8,
            "Adam per-node traffic should be skewed: {:?}",
            adam.per_node_gbit
        );
        assert!(
            imbalance(&even.per_node_gbit) < 1.2,
            "KV-pair PS should be even: {:?}",
            even.per_node_gbit
        );
    }

    #[test]
    fn traffic_matches_cost_model_for_ps() {
        // Per-node PS traffic for the whole model ≈ 2·params·4·(P1+P2−2)/P2.
        let vgg = zoo::vgg19();
        let r = report(System::WfbpPs, &vgg, 8, 40.0);
        let expect_gbit = 2.0 * vgg.param_bytes() as f64 * (8.0 + 8.0 - 2.0) / 8.0 * 8.0 / 1e9;
        let got = r.per_node_gbit[0];
        assert!(
            (got - expect_gbit).abs() / expect_gbit < 0.02,
            "per-node traffic {got} Gb vs cost model {expect_gbit} Gb"
        );
    }

    #[test]
    fn sequential_iteration_is_compute_plus_comm() {
        let g = zoo::googlenet();
        let r = report(System::CaffePs, &g, 4, 10.0);
        assert!(r.iter_time_s > r.compute_s, "sequential must add comm time");
        assert_eq!(
            r.schemes
                .iter()
                .filter(|(_, s)| *s == CommScheme::Sfb)
                .count(),
            0
        );
    }

    #[test]
    fn onebit_reduces_fc_traffic() {
        let vgg = zoo::vgg19();
        let onebit = report(System::Cntk1Bit, &vgg, 8, 40.0);
        let ps = report(System::WfbpPs, &vgg, 8, 40.0);
        assert!(
            onebit.per_node_gbit[0] < 0.45 * ps.per_node_gbit[0],
            "1-bit {} Gb vs PS {} Gb",
            onebit.per_node_gbit[0],
            ps.per_node_gbit[0]
        );
    }

    #[test]
    fn multi_gpu_scales_with_local_aggregation() {
        let g = zoo::googlenet();
        let mut cfg = SimConfig::system(System::Poseidon, 1, 40.0);
        cfg.gpus_per_node = 4;
        let r = simulate(&g, &cfg);
        assert!(
            r.speedup > 3.8,
            "4 GPUs on one node should be near-linear: {}x",
            r.speedup
        );
        // 8-GPU nodes on the heavy VGG19 pay visible PCIe aggregation.
        let vgg = zoo::vgg19();
        let mut cfg = SimConfig::system(System::Poseidon, 4, 40.0);
        cfg.gpus_per_node = 8;
        let r = simulate(&vgg, &cfg);
        assert!(
            r.speedup > 28.0 && r.speedup < 32.0,
            "4x8 GPUs VGG19: {}x",
            r.speedup
        );
    }

    #[test]
    fn multi_gpu_increases_effective_batch_for_best_scheme() {
        // GoogLeNet's thin classifier: SFB at K=32 single GPU on few nodes,
        // PS once 8 GPUs multiply the per-node batch.
        let g = zoo::googlenet();
        let mut small = SimConfig::system(System::Poseidon, 4, 40.0);
        small.batch_per_node = Some(32);
        let r_small = simulate(&g, &small);
        let mut big = small.clone();
        big.gpus_per_node = 8; // node batch 256 > the ~253 crossover
        let r_big = simulate(&g, &big);
        let fc_scheme = |r: &IterationReport| {
            r.schemes
                .iter()
                .find(|(n, _)| n.contains("classifier"))
                .map(|&(_, s)| s)
                .expect("classifier present")
        };
        assert_eq!(fc_scheme(&r_small), CommScheme::Sfb);
        assert_eq!(
            fc_scheme(&r_big),
            CommScheme::Ps,
            "bigger node batch flips to PS"
        );
    }

    #[test]
    fn straggler_gates_bsp_iteration_time() {
        let g = zoo::googlenet();
        let clean = simulate(&g, &SimConfig::system(System::WfbpPs, 8, 40.0));
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
        cfg.straggler = Some((3, 2.0));
        let slow = simulate(&g, &cfg);
        // BSP waits for the slowest node: iteration roughly doubles.
        assert!(
            slow.iter_time_s > 1.8 * clean.iter_time_s,
            "straggler must gate the barrier: {} vs {}",
            slow.iter_time_s,
            clean.iter_time_s
        );
    }

    #[test]
    fn dropping_the_straggler_recovers_throughput() {
        let g = zoo::googlenet();
        let mut gated = SimConfig::system(System::WfbpPs, 8, 40.0);
        gated.straggler = Some((3, 2.0));
        let waiting = simulate(&g, &gated);
        let mut dropping = gated.clone();
        dropping.drop_stragglers = true;
        let dropped = simulate(&g, &dropping);
        assert!(
            dropped.iter_time_s < 0.7 * waiting.iter_time_s,
            "dropping should cut the straggler tail: {} vs {}",
            dropped.iter_time_s,
            waiting.iter_time_s
        );
        // But the straggler still receives parameters, so the protocol
        // completes for every node.
        assert!(dropped.speedup > waiting.speedup);
    }

    #[test]
    fn straggler_drop_works_for_sfb_layers_too() {
        let vgg = zoo::vgg19();
        let mut cfg = SimConfig::system(System::Poseidon, 8, 10.0);
        cfg.straggler = Some((0, 3.0));
        cfg.drop_stragglers = true;
        let r = simulate(&vgg, &cfg);
        assert!(r.schemes.iter().any(|(_, s)| *s == CommScheme::Sfb));
        // With the straggler's contributions dropped, the other 7 nodes are
        // barely slowed.
        let clean = simulate(&vgg, &SimConfig::system(System::Poseidon, 8, 10.0));
        assert!(r.iter_time_s < 1.25 * clean.iter_time_s);
    }

    #[test]
    fn fair_share_model_agrees_with_fifo() {
        // The two bandwidth models must agree closely when comm is fully
        // overlapped, and within ~25% when bandwidth-bound.
        let vgg = zoo::vgg19();
        let fifo = simulate(&vgg, &SimConfig::system(System::Poseidon, 8, 40.0));
        let mut cfg = SimConfig::system(System::Poseidon, 8, 40.0);
        cfg.fair_share = true;
        let fair = simulate(&vgg, &cfg);
        assert!((fifo.speedup - fair.speedup).abs() / fifo.speedup < 0.02);
        assert!(
            (fifo.per_node_gbit[0] - fair.per_node_gbit[0]).abs() < 0.01,
            "traffic accounting must be identical across models"
        );

        let g = zoo::googlenet();
        let fifo = simulate(&g, &SimConfig::system(System::WfbpPs, 8, 5.0));
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 5.0);
        cfg.fair_share = true;
        let fair = simulate(&g, &cfg);
        let rel = (fifo.speedup - fair.speedup).abs() / fifo.speedup;
        assert!(
            rel < 0.25,
            "bandwidth-bound disagreement {rel:.2} too large"
        );
    }

    #[test]
    fn traced_simulation_matches_untraced_and_exports_valid_chrome_json() {
        let vgg = zoo::vgg19();
        let cfg = SimConfig::system(System::Poseidon, 4, 40.0);
        let plain = simulate(&vgg, &cfg);
        let (report, trace) = simulate_with_trace(&vgg, &cfg);
        // Tracing is pure observation: the simulation result is unchanged.
        assert_eq!(plain.iter_time_s, report.iter_time_s);
        assert_eq!(plain.per_node_gbit, report.per_node_gbit);
        assert!(trace.event_count() > 0, "trace must record the iteration");

        // WFBP is visible in the timeline: on node 0 some layer's sync
        // window opens strictly before the node's backward pass finishes.
        let t0 = trace
            .tracks
            .iter()
            .find(|t| t.name == "node 0")
            .expect("node 0 track");
        let last_bwd_end = t0
            .events
            .iter()
            .filter(|e| e.name == "bwd" && e.kind == EventKind::End)
            .map(|e| e.ts_ns)
            .max()
            .expect("bwd spans recorded");
        let first_sync_begin = t0
            .events
            .iter()
            .filter(|e| e.name == "wfbp.sync" && e.kind == EventKind::Begin)
            .map(|e| e.ts_ns)
            .min()
            .expect("sync spans recorded");
        assert!(
            first_sync_begin < last_bwd_end,
            "WFBP overlap missing: first sync at {first_sync_begin} ns, backward ends {last_bwd_end} ns"
        );

        // The exporter round-trips: structurally valid Chrome trace JSON.
        let json = crate::telemetry::chrome::to_chrome_json(&[trace]);
        let stats = crate::telemetry::chrome::validate(&json).expect("valid chrome trace");
        assert!(stats.spans > 0 && stats.tracks > 1);
    }

    #[test]
    fn simulated_metrics_emit_live_run_families() {
        let vgg = zoo::vgg19();
        let cfg = SimConfig::system(System::Poseidon, 4, 40.0);
        let plain = simulate(&vgg, &cfg);
        let (report, snap) = simulate_with_metrics(&vgg, &cfg);
        // Metrics replay is pure observation too.
        assert_eq!(plain.iter_time_s, report.iter_time_s);
        // The virtual-clock run lands in the same families a live scrape
        // serves: per-node step histograms and per-peer traffic counters.
        let steps = snap
            .family("poseidon_step_time_ns")
            .expect("step time family");
        assert_eq!(steps.samples.len(), 4, "one step histogram per node");
        let tx = snap
            .family("poseidon_tx_bytes_total")
            .expect("tx bytes family");
        assert!(!tx.samples.is_empty(), "simulated sends must be counted");
        let text = snap.render();
        assert!(
            text.contains("poseidon_step_time_ns_bucket"),
            "exposition render must work on simulated snapshots: {text}"
        );
    }

    #[test]
    fn ring_per_node_traffic_is_bounded_independent_of_p() {
        // Each ring worker relays every chunk at most twice in each
        // direction (one REDUCE hop, one DISTRIBUTE hop), so per-node
        // traffic caps at 2·dense sent + 2·dense received no matter how
        // many nodes join — PS per-node traffic instead grows with
        // (P1+P2−2)/P2. (The ledger counts both directions.)
        let vgg = zoo::vgg19();
        let dense_gbit = vgg.param_bytes() as f64 * 8.0 / 1e9;
        for p in [4usize, 8, 16] {
            let mut cfg = SimConfig::system(System::WfbpPs, p, 40.0);
            cfg.policy = crate::config::SchemePolicy::AlwaysRing;
            let ring = simulate(&vgg, &cfg);
            assert!(
                ring.schemes.iter().all(|(_, s)| *s == CommScheme::Ring),
                "AlwaysRing must assign Ring everywhere: {:?}",
                ring.schemes
            );
            let max_gbit = ring.per_node_gbit.iter().cloned().fold(0.0, f64::max);
            assert!(
                max_gbit < 1.02 * 4.0 * dense_gbit,
                "P={p}: ring per-node traffic {max_gbit} Gb exceeds the 4·dense cap"
            );
            // Whole-cluster bytes: 2(P−1) hops, each counted at sender and
            // receiver.
            let total: f64 = ring.per_node_gbit.iter().sum();
            let expect = 2.0 * 2.0 * (p - 1) as f64 * dense_gbit;
            assert!(
                (total - expect).abs() / expect < 0.02,
                "P={p}: cluster ring traffic {total} Gb vs expected {expect} Gb"
            );
        }
    }

    #[test]
    fn tree_completes_with_gather_and_broadcast() {
        let g = zoo::googlenet();
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
        cfg.policy = crate::config::SchemePolicy::AlwaysTree;
        let r = simulate(&g, &cfg);
        assert!(r.schemes.iter().all(|(_, s)| *s == CommScheme::Tree));
        assert!(r.iter_time_s >= r.compute_s);
        assert!(r.per_node_gbit.iter().all(|&b| b > 0.0));
        // The root relays the most traffic (gather in + broadcast out plus
        // relayed interior contributions); leaves send one copy up and
        // forward at most two down.
        assert!(
            r.per_node_gbit[0] > r.per_node_gbit[7],
            "root should carry more than a leaf: {:?}",
            r.per_node_gbit
        );
    }

    #[test]
    fn topo_aware_policy_mixes_schemes_in_simulation() {
        // An oversubscribed 2-level cluster (4 nodes × 2 GPUs): the cost
        // model keeps the latency-bound first conv on PS and the FC layers
        // on SFB, but moves the bandwidth-bound big convs — whose PS traffic
        // would all cross the oversubscribed core — onto a collective. This
        // is the FireCaffe-style crossover, end to end in the simulator.
        use crate::config::{SchemePolicy, Topology};
        use poseidon_netsim::LinkConfig;
        let vgg = zoo::vgg19();
        let topo = Topology::two_level(
            4,
            2,
            LinkConfig {
                bandwidth_gbps: 100.0,
                latency_s: 1e-6,
            },
            LinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 50e-6,
            },
            4.0,
        );
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 10.0);
        cfg.policy = SchemePolicy::TopoAware(topo);
        let r = simulate(&vgg, &cfg);
        let scheme_of = |name: &str| {
            r.schemes
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, s)| s)
                .unwrap_or_else(|| panic!("{name} missing from {:?}", r.schemes))
        };
        assert_eq!(
            scheme_of("conv1_1"),
            CommScheme::Ps,
            "tiny first conv stays latency-bound on PS: {:?}",
            r.schemes
        );
        assert!(
            matches!(scheme_of("conv5_4"), CommScheme::Ring | CommScheme::Tree),
            "big conv should go collective: {:?}",
            r.schemes
        );
        assert_eq!(
            scheme_of("fc6"),
            CommScheme::Sfb,
            "FC layers stay on sufficient factors: {:?}",
            r.schemes
        );
        // The mixed plan still completes every layer on every node (the
        // simulate() internal barrier assertion), and every scheme family
        // appears at once.
        let distinct: std::collections::HashSet<_> = r.schemes.iter().map(|&(_, s)| s).collect();
        assert!(distinct.len() >= 3, "expected a 3-way mix: {:?}", r.schemes);
    }

    #[test]
    fn ring_has_no_straggler_drop_escape_hatch() {
        // Collectives are barrier-full: every worker is a link in the chain,
        // so even with drop_stragglers the slow node gates the fold (unlike
        // PS, where its pushes are simply discarded). The run must still
        // complete — the dropped node keeps sending.
        let g = zoo::googlenet();
        let mut cfg = SimConfig::system(System::WfbpPs, 8, 40.0);
        cfg.policy = crate::config::SchemePolicy::AlwaysRing;
        let clean = simulate(&g, &cfg);
        let mut slow = cfg.clone();
        slow.straggler = Some((3, 2.0));
        slow.drop_stragglers = true;
        let gated = simulate(&g, &slow);
        assert!(
            gated.iter_time_s > 1.5 * clean.iter_time_s,
            "ring cannot drop a straggler: {} vs {}",
            gated.iter_time_s,
            clean.iter_time_s
        );
    }

    #[test]
    fn speedup_series_is_monotone_for_poseidon() {
        let g = zoo::googlenet();
        let series = speedup_series(
            &g,
            |n| SimConfig::system(System::Poseidon, n, 40.0),
            &[1, 2, 4, 8],
        );
        assert!(
            (series[0].1 - 1.0).abs() < 0.02,
            "1-node speedup ~1: {series:?}"
        );
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1, "speedup must grow: {series:?}");
        }
    }
}
