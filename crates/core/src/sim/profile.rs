//! Simulator configuration: systems under test and the GPU compute model.

use crate::config::{CodecPolicy, Partition, Scheduler, SchemePolicy};
use poseidon_nn::zoo::ModelSpec;

/// The named systems compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Vanilla PS parallelisation of Caffe: synchronisation strictly after
    /// backward, GPU↔CPU memcpy unoverlapped ("Caffe+PS").
    CaffePs,
    /// Poseidon-scheduled PS: WFBP overlap, fine-grained KV pairs, but no
    /// HybComm ("Caffe+WFBP" / "TF+WFBP").
    WfbpPs,
    /// Full Poseidon: WFBP + HybComm.
    Poseidon,
    /// Distributed TensorFlow baseline: sequential sync with whole-tensor
    /// shard placement ("TF").
    TensorFlow,
    /// Project Adam's SF-push / matrix-pull for FC layers, WFBP otherwise.
    Adam,
    /// CNTK-style 1-bit quantization of FC gradients, sequential scheduler.
    Cntk1Bit,
}

impl System {
    /// Display label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            System::CaffePs => "Caffe+PS",
            System::WfbpPs => "WFBP(PS)",
            System::Poseidon => "Poseidon",
            System::TensorFlow => "TF",
            System::Adam => "Adam",
            System::Cntk1Bit => "CNTK-1bit",
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Cluster size (every node is worker + colocated PS shard).
    pub nodes: usize,
    /// Per-GPU batch; `None` uses the model's Table-3 batch.
    pub batch_per_node: Option<usize>,
    /// GPUs per node (Section 5.1 "Multi-GPU Settings"). Gradients from the
    /// node's GPUs are aggregated on a leader GPU over PCIe before network
    /// synchronisation, and fresh parameters are re-distributed afterwards.
    pub gpus_per_node: usize,
    /// Device-to-device PCIe copy bandwidth for the local aggregation
    /// (bytes/s). Defaults to 8 GB/s — PCIe 3.0 x16 staging through the
    /// host bridge, shared by the node's GPUs.
    pub pcie_bytes_per_s: f64,
    /// Per-direction NIC bandwidth (GbE figure).
    pub bandwidth_gbps: f64,
    /// Fraction of the nominal bandwidth achievable as application goodput
    /// (TCP/IP + framing overhead, imperfect pipelining). Applied to
    /// `bandwidth_gbps` before simulation.
    pub bandwidth_efficiency: f64,
    /// One-way message latency.
    pub latency_s: f64,
    /// When layer synchronisation may start.
    pub scheduler: Scheduler,
    /// Layer-to-scheme policy.
    pub policy: SchemePolicy,
    /// Layer-to-codec policy, orthogonal to the scheme policy (identity by
    /// default; the `OneBit` scheme policy implies the 1-bit codec on FC
    /// layers regardless). Compressed wire bytes are priced against the
    /// ledger; the codec's transform passes are charged on the CPU stream.
    pub codec_policy: CodecPolicy,
    /// Parameter placement across shards.
    pub partition: Partition,
    /// Vanilla-Caffe-PS behaviour: GPU↔CPU copies block the iteration.
    ///
    /// Poseidon's client library multi-threads the `Move` operations with
    /// CUDA async copies over pinned memory (~12 GB/s), fully overlapped with
    /// computation — the simulator treats those as free, as the paper's
    /// single-node measurements justify. The vanilla PS baseline instead does
    /// synchronous unpinned copies on the critical path; when this flag is
    /// set, every move costs `bytes / memcpy_bytes_per_s + per_move_overhead`.
    pub unoverlapped_memcpy: bool,
    /// Effective GPU throughput (FLOP/s) when the model carries no
    /// single-node calibration number.
    pub gpu_default_flops: f64,
    /// Effective *unpinned synchronous* GPU↔CPU copy bandwidth (bytes/s),
    /// charged only for `unoverlapped_memcpy` engines.
    pub memcpy_bytes_per_s: f64,
    /// Fixed per-move launch/sync overhead for unoverlapped engines.
    pub per_move_overhead_s: f64,
    /// Server-side update application rate (bytes/s of gradient folded).
    pub apply_bytes_per_s: f64,
    /// Rate for SF reconstruction / (de)quantization work (FLOP/s on the
    /// transform stream).
    pub transform_flops: f64,
    /// Inject a straggler: `(node, compute slowdown factor > 1)`.
    pub straggler: Option<(usize, f64)>,
    /// The paper's straggler policy: "Poseidon handles stragglers by simply
    /// dropping them" — when set, BSP aggregation proceeds once `P − 1`
    /// contributions arrive and the straggler's late update is discarded
    /// (it still receives fresh parameters).
    pub drop_stragglers: bool,
    /// Use the max-min fair fluid-flow bandwidth model
    /// ([`poseidon_netsim::FlowNetwork`]) instead of the default FIFO NIC
    /// queues — higher fidelity for many concurrent TCP flows, slower to
    /// simulate.
    pub fair_share: bool,
}

impl SimConfig {
    /// Baseline knobs shared by every system.
    fn base(nodes: usize, bandwidth_gbps: f64) -> Self {
        Self {
            nodes,
            batch_per_node: None,
            gpus_per_node: 1,
            pcie_bytes_per_s: 8.0e9,
            bandwidth_gbps,
            bandwidth_efficiency: 0.7,
            latency_s: 50e-6,
            scheduler: Scheduler::Wfbp,
            policy: SchemePolicy::Hybrid,
            codec_policy: CodecPolicy::Identity,
            partition: Partition::default_kv_pairs(),
            unoverlapped_memcpy: false,
            gpu_default_flops: 4.0e12,
            memcpy_bytes_per_s: 1.8e9,
            per_move_overhead_s: 500e-6,
            apply_bytes_per_s: 10.0e9,
            transform_flops: 2.0e12,
            straggler: None,
            drop_stragglers: false,
            fair_share: false,
        }
    }

    /// Configuration for one of the paper's named systems.
    pub fn system(system: System, nodes: usize, bandwidth_gbps: f64) -> Self {
        let mut cfg = Self::base(nodes, bandwidth_gbps);
        match system {
            System::CaffePs => {
                cfg.scheduler = Scheduler::Sequential;
                cfg.policy = SchemePolicy::AlwaysPs;
                cfg.unoverlapped_memcpy = true;
            }
            System::WfbpPs => {
                cfg.policy = SchemePolicy::AlwaysPs;
            }
            System::Poseidon => {}
            System::TensorFlow => {
                cfg.scheduler = Scheduler::Sequential;
                cfg.policy = SchemePolicy::AlwaysPs;
                cfg.partition = Partition::WholeTensor;
                // gRPC tensor (de)serialisation on the critical path; see
                // Figure 7's stall breakdown.
                cfg.unoverlapped_memcpy = true;
                cfg.memcpy_bytes_per_s = 1.2e9;
                cfg.per_move_overhead_s = 100e-6;
            }
            System::Adam => {
                cfg.policy = SchemePolicy::AdamSf;
            }
            System::Cntk1Bit => {
                cfg.scheduler = Scheduler::Sequential;
                cfg.policy = SchemePolicy::OneBit;
            }
        }
        cfg
    }
}

/// Per-layer compute times for one model at one batch size.
///
/// If the spec carries the paper's measured single-node images/sec, the
/// effective GPU FLOP rate is calibrated so the simulated single-node
/// iteration time reproduces it exactly; otherwise a default effective rate
/// is used.
#[derive(Clone, Debug)]
pub struct LayerTimes {
    /// Forward time per layer (whole batch), seconds.
    pub fwd: Vec<f64>,
    /// Backward time per layer (whole batch), seconds.
    pub bwd: Vec<f64>,
    /// The effective FLOP rate used.
    pub effective_flops: f64,
}

impl LayerTimes {
    /// Derives layer times for `spec` at `batch` samples per iteration.
    pub fn derive(spec: &ModelSpec, batch: usize, default_flops: f64) -> Self {
        let per_sample = (spec.fwd_flops() + spec.bwd_flops()) as f64;
        let effective_flops = match spec.paper_single_node_ips {
            Some(ips) => per_sample * ips,
            None => default_flops,
        };
        let scale = batch as f64 / effective_flops;
        Self {
            fwd: spec
                .layers
                .iter()
                .map(|l| l.fwd_flops as f64 * scale)
                .collect(),
            bwd: spec
                .layers
                .iter()
                .map(|l| l.bwd_flops as f64 * scale)
                .collect(),
            effective_flops,
        }
    }

    /// Total compute time of one iteration (forward + backward).
    pub fn total(&self) -> f64 {
        self.fwd.iter().sum::<f64>() + self.bwd.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_nn::zoo;

    #[test]
    fn calibration_reproduces_paper_single_node_throughput() {
        let spec = zoo::vgg19();
        let batch = spec.default_batch;
        let times = LayerTimes::derive(&spec, batch, 4.0e12);
        let ips = batch as f64 / times.total();
        assert!(
            (ips - 35.5).abs() < 0.1,
            "calibrated single-node VGG19 throughput {ips} != paper's 35.5"
        );
    }

    #[test]
    fn uncalibrated_model_uses_default_rate() {
        let spec = zoo::cifar10_quick(); // no paper ips
        let times = LayerTimes::derive(&spec, 100, 1.0e12);
        assert_eq!(times.effective_flops, 1.0e12);
        assert!(times.total() > 0.0);
    }

    #[test]
    fn layer_times_scale_with_batch() {
        let spec = zoo::googlenet();
        let t64 = LayerTimes::derive(&spec, 64, 4e12);
        let t128 = LayerTimes::derive(&spec, 128, 4e12);
        assert!((t128.total() / t64.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backward_dominates_forward() {
        let spec = zoo::vgg19();
        let times = LayerTimes::derive(&spec, 32, 4e12);
        let fwd: f64 = times.fwd.iter().sum();
        let bwd: f64 = times.bwd.iter().sum();
        assert!(bwd > fwd, "bwd {bwd} should exceed fwd {fwd}");
    }

    #[test]
    fn system_presets_match_paper_semantics() {
        let tf = SimConfig::system(System::TensorFlow, 8, 40.0);
        assert_eq!(tf.scheduler, Scheduler::Sequential);
        assert_eq!(tf.partition, Partition::WholeTensor);
        let psd = SimConfig::system(System::Poseidon, 8, 40.0);
        assert_eq!(psd.scheduler, Scheduler::Wfbp);
        assert_eq!(psd.policy, SchemePolicy::Hybrid);
        let caffe_ps = SimConfig::system(System::CaffePs, 8, 40.0);
        assert!(caffe_ps.unoverlapped_memcpy);
        assert_eq!(
            SimConfig::system(System::Cntk1Bit, 8, 40.0).policy,
            SchemePolicy::OneBit
        );
    }
}
