//! The cluster timing simulator.
//!
//! Replays Poseidon's synchronisation protocol for one training iteration of
//! a [`poseidon_nn::zoo::ModelSpec`] over the discrete-event network of
//! [`poseidon_netsim`], with a calibrated GPU compute model, and reports
//! iteration time, throughput, per-node traffic and the GPU busy/stall
//! breakdown — the measurements behind Figures 5–10 of the paper.
//!
//! # Substitution note
//!
//! The paper measured wall-clock throughput on a real 32-node Titan X /
//! 40GbE cluster. Here, per-layer compute times come from per-layer FLOP
//! counts scaled so single-node throughput matches the paper's measured
//! images/sec (see [`LayerTimes`]), and communication times come from the
//! NIC-level network model. Speedup *shapes* (who wins, crossovers, where
//! bandwidth saturates) are the reproduction target, not absolute times.

mod engine;
mod profile;

pub use engine::{
    simulate, simulate_with_metrics, simulate_with_trace, speedup_series, IterationReport,
};
pub use profile::{LayerTimes, SimConfig, System};
