//! Poseidon: an efficient communication architecture for distributed deep
//! learning on GPU clusters (Zhang et al., USENIX ATC 2017) — a from-scratch
//! Rust reproduction.
//!
//! Poseidon's two ideas, both implemented here:
//!
//! 1. **Wait-free backpropagation (WFBP)** — every layer of a neural network
//!    owns an independent set of parameters, so layer *l*'s synchronisation
//!    can start the moment its backward pass `bˡ` finishes, overlapping with
//!    the backward computation of the layers below it. See [`runtime`] for
//!    the threaded implementation and [`sim`] for the timing model.
//!
//! 2. **Hybrid communication (HybComm)** — for each layer, choose between a
//!    sharded parameter server (good for small/indecomposable gradients) and
//!    sufficient-factor broadcasting (good for large FC gradients at small
//!    batch sizes) using the analytic byte-cost model of the paper's Table 1.
//!    See [`costmodel`] and [`coordinator`].
//!
//! The crate offers two execution backends:
//!
//! * [`runtime`] — a real data-parallel trainer: worker and KV-shard
//!   endpoints exchanging serialised byte messages over a pluggable
//!   [`transport`] (in-process channels for the threaded `train`, TCP
//!   sockets for the per-process `run_endpoint` / `poseidon-node` runtime),
//!   training real [`poseidon_nn`] networks. Used for the correctness and
//!   statistical experiments.
//! * [`sim`] — a discrete-event timing simulation of a GPU cluster running
//!   the same protocol over [`poseidon_netsim`], calibrated against the
//!   paper's single-node throughputs. Used for the throughput experiments
//!   (Figures 5–10).
//!
//! Supporting modules: [`wire`] (the versioned frame codec every transport
//! speaks), [`chunk`] (fixed-size KV-pair partitioning of parameters),
//! [`kvstore`] (bulk-synchronous shard state machine), [`syncer`] (per-layer
//! Send/Receive/Move), [`config`] (cluster and scheme configuration),
//! [`faults`] (deterministic fault injection for chaos testing the comm
//! plane), [`membership`] (elastic shard-ownership epochs and the scripted
//! reconfiguration plan DSL), [`checkpoint`] (bitwise snapshot/restore of
//! training state), [`serving`] (the live inference front door answering
//! against snapshot-isolated parameter versions), [`telemetry`] (structured
//! tracing of the training path with Chrome-trace export), [`metrics`]
//! (always-on live counters/histograms with Prometheus pull exposition),
//! [`health`] (per-peer verdicts — straggler detection — over metrics
//! snapshots), and [`stats`] (report formatting).

pub mod api;
pub mod checkpoint;
pub mod chunk;
pub mod config;
pub mod coordinator;
pub mod costmodel;
pub mod faults;
pub mod health;
pub mod kvstore;
pub mod membership;
pub mod metrics;
pub mod pool;
pub mod runtime;
pub mod serving;
pub mod sim;
pub mod stats;
pub mod syncer;
pub mod telemetry;
pub mod transport;
pub mod wire;

pub use config::{ClusterConfig, CommScheme, Partition, Scheduler, SchemePolicy};
pub use coordinator::Coordinator;
