//! The coordinator: Poseidon's information book and `BestScheme` API.
//!
//! "To setup distributed training, the client program first instantiates
//! Poseidon by creating a coordinator within its process. Coordinators will
//! first collect necessary information, including the cluster information and
//! the model architecture" (Section 4.1). The coordinator then decides, per
//! layer, which communication scheme the syncers use (Algorithm 1), and owns
//! the KV-pair placement table.

use crate::chunk::ChunkTable;
use crate::config::{
    ClusterConfig, Codec, CodecPolicy, CommScheme, Partition, SchemePolicy, Topology,
};
use crate::costmodel;
use poseidon_nn::zoo::ModelSpec;
use poseidon_nn::{LayerKind, Model, Network};

/// The per-layer entry of the coordinator's information book.
#[derive(Clone, Debug)]
pub struct LayerInfo {
    /// Layer name.
    pub name: String,
    /// Flattened trainable parameter count (weights + bias), 0 if stateless.
    pub param_elems: usize,
    /// `(M, N)` if this is a fully-connected layer (weights `M × N`).
    pub fc_shape: Option<(usize, usize)>,
}

impl LayerInfo {
    /// `true` iff the layer has parameters to synchronise.
    pub fn is_trainable(&self) -> bool {
        self.param_elems > 0
    }
}

/// The coordinator.
#[derive(Clone, Debug)]
pub struct Coordinator {
    cluster: ClusterConfig,
    policy: SchemePolicy,
    codec_policy: CodecPolicy,
    layers: Vec<LayerInfo>,
    table: ChunkTable,
}

impl Coordinator {
    /// Builds the information book from a real trainable network.
    pub fn from_network(
        net: &Network,
        cluster: ClusterConfig,
        policy: SchemePolicy,
        partition: Partition,
    ) -> Self {
        Self::from_model(net, cluster, policy, partition)
    }

    /// Builds the information book from any [`Model`] (sequential or DAG).
    /// Structural slots (concat nodes, the graph input) become untrainable
    /// entries so slot ids and layer indices coincide.
    pub fn from_model<M: Model>(
        model: &M,
        cluster: ClusterConfig,
        policy: SchemePolicy,
        partition: Partition,
    ) -> Self {
        let layers: Vec<LayerInfo> = (0..model.num_slots())
            .map(|id| match model.slot(id) {
                Some(layer) => {
                    let param_elems = layer.params().map_or(0, |p| p.num_params());
                    let fc_shape = match layer.kind() {
                        LayerKind::FullyConnected => layer.params().map(|p| p.weights.shape()),
                        _ => None,
                    };
                    LayerInfo {
                        name: layer.name().to_string(),
                        param_elems,
                        fc_shape,
                    }
                }
                None => LayerInfo {
                    name: format!("<structural:{id}>"),
                    param_elems: 0,
                    fc_shape: None,
                },
            })
            .collect();
        Self::from_layers(layers, cluster, policy, partition)
    }

    /// Builds the information book from a descriptor model (simulation).
    pub fn from_spec(
        spec: &ModelSpec,
        cluster: ClusterConfig,
        policy: SchemePolicy,
        partition: Partition,
    ) -> Self {
        let layers: Vec<LayerInfo> = spec
            .layers
            .iter()
            .map(|l| LayerInfo {
                name: l.name.clone(),
                param_elems: l.params as usize,
                fc_shape: l.fc_shape(),
            })
            .collect();
        Self::from_layers(layers, cluster, policy, partition)
    }

    /// Builds directly from layer entries.
    pub fn from_layers(
        layers: Vec<LayerInfo>,
        cluster: ClusterConfig,
        policy: SchemePolicy,
        partition: Partition,
    ) -> Self {
        let elems: Vec<usize> = layers.iter().map(|l| l.param_elems).collect();
        let table = ChunkTable::build(&elems, cluster.servers, partition);
        Self {
            cluster,
            policy,
            codec_policy: CodecPolicy::Identity,
            layers,
            table,
        }
    }

    /// Sets the gradient-compression policy (builder-style; the default is
    /// [`CodecPolicy::Identity`], the bitwise-exact f32 wire).
    pub fn with_codec_policy(mut self, codec_policy: CodecPolicy) -> Self {
        self.codec_policy = codec_policy;
        self
    }

    /// The cluster configuration (the `Query` API's `n_worker`, `n_server`,
    /// `batchsize` entries).
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The active scheme policy.
    pub fn policy(&self) -> SchemePolicy {
        self.policy
    }

    /// The information book's layer entries, bottom-up.
    pub fn layers(&self) -> &[LayerInfo] {
        &self.layers
    }

    /// The KV-pair placement table.
    pub fn chunk_table(&self) -> &ChunkTable {
        &self.table
    }

    /// Algorithm 1, filtered through the configured policy: the communication
    /// scheme for layer `l`.
    ///
    /// SFB/Adam/1-bit apply to FC layers only (their updates decompose into
    /// sufficient factors); other layers fall back to PS under those
    /// policies. The collective schemes (ring/tree) apply to any trainable
    /// layer. A single-worker cluster always reduces to PS — SFB has no
    /// peers and a one-worker collective chain never completes.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or not trainable.
    pub fn best_scheme(&self, layer: usize) -> CommScheme {
        let info = &self.layers[layer];
        assert!(
            info.is_trainable(),
            "layer {} ({}) has no parameters",
            layer,
            info.name
        );
        let fc = info.fc_shape;
        let single = self.cluster.workers <= 1;
        match self.policy {
            SchemePolicy::AlwaysPs => CommScheme::Ps,
            SchemePolicy::Hybrid => match fc {
                Some((m, n)) if !single => costmodel::best_scheme_fc(m, n, &self.cluster),
                _ => CommScheme::Ps,
            },
            SchemePolicy::AlwaysSfbForFc => {
                if fc.is_some() && !single {
                    CommScheme::Sfb
                } else {
                    CommScheme::Ps
                }
            }
            SchemePolicy::AdamSf => {
                if fc.is_some() {
                    CommScheme::AdamSf
                } else {
                    CommScheme::Ps
                }
            }
            // The 1-bit baseline is plain PS traffic; the compression lives in
            // the codec dimension (see [`Coordinator::best_codec`]).
            SchemePolicy::OneBit => CommScheme::Ps,
            SchemePolicy::AlwaysRing => {
                if single {
                    CommScheme::Ps
                } else {
                    CommScheme::Ring
                }
            }
            SchemePolicy::AlwaysTree => {
                if single {
                    CommScheme::Ps
                } else {
                    CommScheme::Tree
                }
            }
            SchemePolicy::TopoAware(topo) => {
                costmodel::best_scheme_topo(info.param_elems, fc, &self.cluster, &topo)
            }
        }
    }

    /// The scheme chosen for every trainable layer: `(layer index, scheme)`.
    pub fn scheme_assignment(&self) -> Vec<(usize, CommScheme)> {
        (0..self.layers.len())
            .filter(|&l| self.layers[l].is_trainable())
            .map(|l| (l, self.best_scheme(l)))
            .collect()
    }

    /// The gradient codec chosen for `layer`, composing the scheme decision
    /// with the [`CodecPolicy`].
    ///
    /// SFB and Adam layers always ride identity — sufficient factors are the
    /// compression, and re-encoding `(u, v)` pairs would destroy the rank-K
    /// structure the scheme depends on. The [`SchemePolicy::OneBit`] baseline
    /// forces `Codec::OneBit` on FC layers regardless of the codec policy.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or not trainable.
    pub fn best_codec(&self, layer: usize) -> Codec {
        let info = &self.layers[layer];
        let scheme = self.best_scheme(layer);
        if !matches!(scheme, CommScheme::Ps | CommScheme::Ring | CommScheme::Tree) {
            return Codec::Identity;
        }
        if self.policy == SchemePolicy::OneBit && info.fc_shape.is_some() {
            return Codec::OneBit;
        }
        match self.codec_policy {
            CodecPolicy::Identity => Codec::Identity,
            CodecPolicy::Always(codec) => codec,
            CodecPolicy::CostAware => {
                let flat;
                let topo = match &self.policy {
                    SchemePolicy::TopoAware(t) => t,
                    _ => {
                        flat = Topology::flat(
                            self.cluster.nodes(),
                            poseidon_netsim::LinkConfig::gbe(10.0),
                        );
                        &flat
                    }
                };
                costmodel::best_codec_topo(info.param_elems, scheme, &self.cluster, topo)
            }
        }
    }

    /// The codec chosen for every trainable layer: `(layer index, codec)`.
    pub fn codec_assignment(&self) -> Vec<(usize, Codec)> {
        (0..self.layers.len())
            .filter(|&l| self.layers[l].is_trainable())
            .map(|l| (l, self.best_codec(l)))
            .collect()
    }

    /// The paper's `Query` API (Table 2): look up entries of the information
    /// book by property name. Algorithm 1 itself queries `"n_worker"`,
    /// `"n_server"` and `"batchsize"`; layer properties are reachable as
    /// `"layer:<name>:params"`, `"layer:<name>:width"` (FC `M`) and
    /// `"layer:<name>:height"` (FC `N`).
    ///
    /// Returns `None` for unknown properties or layers.
    ///
    /// # Examples
    ///
    /// ```
    /// use poseidon::config::{ClusterConfig, Partition, SchemePolicy};
    /// use poseidon::coordinator::{Coordinator, LayerInfo};
    ///
    /// let layers = vec![LayerInfo {
    ///     name: "fc6".into(),
    ///     param_elems: 4096 * 25088 + 4096,
    ///     fc_shape: Some((4096, 25088)),
    /// }];
    /// let c = Coordinator::from_layers(
    ///     layers,
    ///     ClusterConfig::colocated(8, 32),
    ///     SchemePolicy::Hybrid,
    ///     Partition::default_kv_pairs(),
    /// );
    /// assert_eq!(c.query("n_worker"), Some(8));
    /// assert_eq!(c.query("batchsize"), Some(32));
    /// assert_eq!(c.query("layer:fc6:width"), Some(4096));
    /// assert_eq!(c.query("layer:fc6:height"), Some(25088));
    /// assert_eq!(c.query("no_such_key"), None);
    /// ```
    pub fn query(&self, property: &str) -> Option<usize> {
        match property {
            "n_worker" => return Some(self.cluster.workers),
            "n_server" => return Some(self.cluster.servers),
            "batchsize" => return Some(self.cluster.batch_per_worker),
            "n_layers" => return Some(self.layers.len()),
            _ => {}
        }
        let mut parts = property.splitn(3, ':');
        if parts.next() != Some("layer") {
            return None;
        }
        let name = parts.next()?;
        let field = parts.next()?;
        let layer = self.layers.iter().find(|l| l.name == name)?;
        match field {
            "params" => Some(layer.param_elems),
            "width" => layer.fc_shape.map(|(m, _)| m),
            "height" => layer.fc_shape.map(|(_, n)| n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poseidon_nn::presets;

    fn coordinator(policy: SchemePolicy, nodes: usize, batch: usize) -> Coordinator {
        let spec = poseidon_nn::zoo::vgg19();
        Coordinator::from_spec(
            &spec,
            ClusterConfig::colocated(nodes, batch),
            policy,
            Partition::default_kv_pairs(),
        )
    }

    #[test]
    fn hybrid_sends_vgg_fc_layers_via_sfb_and_convs_via_ps() {
        let c = coordinator(SchemePolicy::Hybrid, 8, 32);
        let schemes = c.scheme_assignment();
        let by_name: Vec<(String, CommScheme)> = schemes
            .iter()
            .map(|&(l, s)| (c.layers()[l].name.clone(), s))
            .collect();
        for (name, scheme) in &by_name {
            if name.starts_with("fc") {
                assert_eq!(*scheme, CommScheme::Sfb, "{name}");
            } else {
                assert_eq!(*scheme, CommScheme::Ps, "{name}");
            }
        }
    }

    #[test]
    fn hybrid_reduces_to_ps_when_batch_large_and_layer_thin() {
        // GoogLeNet on 16 nodes at batch 128: the paper observes Poseidon
        // "reduces to PS".
        let spec = poseidon_nn::zoo::googlenet();
        let c = Coordinator::from_spec(
            &spec,
            ClusterConfig::colocated(16, 128),
            SchemePolicy::Hybrid,
            Partition::default_kv_pairs(),
        );
        for (l, scheme) in c.scheme_assignment() {
            assert_eq!(scheme, CommScheme::Ps, "{}", c.layers()[l].name);
        }
    }

    #[test]
    fn always_ps_policy_overrides_fc() {
        let c = coordinator(SchemePolicy::AlwaysPs, 8, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ps));
    }

    #[test]
    fn adam_policy_targets_fc_only() {
        let c = coordinator(SchemePolicy::AdamSf, 8, 32);
        for (l, s) in c.scheme_assignment() {
            if c.layers()[l].fc_shape.is_some() {
                assert_eq!(s, CommScheme::AdamSf);
            } else {
                assert_eq!(s, CommScheme::Ps);
            }
        }
    }

    #[test]
    fn one_bit_policy_is_ps_scheme_plus_onebit_codec_on_fc() {
        let c = coordinator(SchemePolicy::OneBit, 8, 32);
        for (l, s) in c.scheme_assignment() {
            assert_eq!(s, CommScheme::Ps, "{}", c.layers()[l].name);
        }
        for (l, codec) in c.codec_assignment() {
            if c.layers()[l].fc_shape.is_some() {
                assert_eq!(codec, Codec::OneBit, "{}", c.layers()[l].name);
            } else {
                assert_eq!(codec, Codec::Identity, "{}", c.layers()[l].name);
            }
        }
    }

    #[test]
    fn codec_policy_skips_factor_schemes() {
        // Hybrid sends VGG FC layers via SFB: factors are the compression, so
        // Always(F16) must only reach the PS layers.
        let c = coordinator(SchemePolicy::Hybrid, 8, 32)
            .with_codec_policy(CodecPolicy::Always(Codec::F16));
        for (l, codec) in c.codec_assignment() {
            if c.best_scheme(l) == CommScheme::Sfb {
                assert_eq!(codec, Codec::Identity, "{}", c.layers()[l].name);
            } else {
                assert_eq!(codec, Codec::F16, "{}", c.layers()[l].name);
            }
        }
    }

    #[test]
    fn default_codec_policy_is_identity_everywhere() {
        let c = coordinator(SchemePolicy::AlwaysPs, 8, 32);
        assert!(c
            .codec_assignment()
            .iter()
            .all(|&(_, cd)| cd == Codec::Identity));
    }

    #[test]
    fn cost_aware_codec_compresses_big_layers_keeps_tiny_ones_raw() {
        let layers = vec![
            LayerInfo {
                name: "bias_tiny".into(),
                param_elems: 64,
                fc_shape: None,
            },
            LayerInfo {
                name: "conv_big".into(),
                param_elems: 16 << 20,
                fc_shape: None,
            },
        ];
        let c = Coordinator::from_layers(
            layers,
            ClusterConfig::colocated(8, 32),
            SchemePolicy::AlwaysPs,
            Partition::default_kv_pairs(),
        )
        .with_codec_policy(CodecPolicy::CostAware);
        let codecs = c.codec_assignment();
        assert_eq!(
            codecs[0].1,
            Codec::Identity,
            "64 floats are not worth an encode pass"
        );
        assert_ne!(codecs[1].1, Codec::Identity, "16M floats on 10G links are");
    }

    #[test]
    fn single_node_never_uses_sfb() {
        let c = coordinator(SchemePolicy::Hybrid, 1, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ps));
        let c = coordinator(SchemePolicy::AlwaysSfbForFc, 1, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ps));
    }

    #[test]
    fn collective_policies_cover_all_trainable_layers() {
        let c = coordinator(SchemePolicy::AlwaysRing, 8, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ring));
        let c = coordinator(SchemePolicy::AlwaysTree, 8, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Tree));
        // Single node reduces to PS: a one-worker chain never completes.
        let c = coordinator(SchemePolicy::AlwaysRing, 1, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ps));
        let c = coordinator(SchemePolicy::AlwaysTree, 1, 32);
        assert!(c
            .scheme_assignment()
            .iter()
            .all(|&(_, s)| s == CommScheme::Ps));
    }

    #[test]
    fn topo_aware_policy_splits_layers_by_size() {
        use crate::config::Topology;
        use poseidon_netsim::LinkConfig;
        // 4 nodes × 2 devices, fast intra-node links, 10G uplinks into a 4:1
        // oversubscribed core: big layers go collective, tiny ones stay PS.
        let topo = Topology::two_level(
            4,
            2,
            LinkConfig {
                bandwidth_gbps: 100.0,
                latency_s: 1e-6,
            },
            LinkConfig {
                bandwidth_gbps: 10.0,
                latency_s: 50e-6,
            },
            4.0,
        );
        let layers = vec![
            LayerInfo {
                name: "conv_small".into(),
                param_elems: 1_000,
                fc_shape: None,
            },
            LayerInfo {
                name: "conv_big".into(),
                param_elems: 16 << 20,
                fc_shape: None,
            },
        ];
        let c = Coordinator::from_layers(
            layers,
            ClusterConfig::colocated(8, 32),
            SchemePolicy::TopoAware(topo),
            Partition::default_kv_pairs(),
        );
        let schemes = c.scheme_assignment();
        assert_eq!(schemes[0].1, CommScheme::Ps, "small layer stays on the PS");
        assert!(
            matches!(schemes[1].1, CommScheme::Ring | CommScheme::Tree),
            "large layer goes collective, got {}",
            schemes[1].1
        );
    }

    #[test]
    fn from_network_extracts_fc_shapes() {
        let net = presets::mlp(&[20, 30, 5], 1);
        let c = Coordinator::from_network(
            &net,
            ClusterConfig::colocated(4, 16),
            SchemePolicy::Hybrid,
            Partition::default_kv_pairs(),
        );
        assert_eq!(c.layers().len(), 3);
        assert_eq!(c.layers()[0].fc_shape, Some((30, 20)));
        assert_eq!(c.layers()[1].fc_shape, None, "ReLU has no parameters");
        assert!(!c.layers()[1].is_trainable());
        assert_eq!(c.layers()[2].fc_shape, Some((5, 30)));
        // Chunk table covers weights + biases of both FC layers.
        let total: usize = c.chunk_table().chunks().iter().map(|ch| ch.len).sum();
        assert_eq!(total, net.num_params());
    }

    #[test]
    fn query_resolves_cluster_and_layer_properties() {
        let c = coordinator(SchemePolicy::Hybrid, 8, 32);
        assert_eq!(c.query("n_worker"), Some(8));
        assert_eq!(c.query("n_server"), Some(8));
        assert_eq!(c.query("batchsize"), Some(32));
        assert_eq!(c.query("layer:fc6:width"), Some(4096));
        assert_eq!(c.query("layer:fc6:height"), Some(25088));
        assert_eq!(c.query("layer:fc6:params"), Some(4096 * 25088 + 4096));
        assert_eq!(c.query("layer:conv1_1:width"), None, "conv has no FC shape");
        assert!(c.query("layer:conv1_1:params").is_some());
        assert_eq!(c.query("layer:nope:params"), None);
        assert_eq!(c.query("bogus"), None);
    }

    #[test]
    #[should_panic(expected = "has no parameters")]
    fn best_scheme_on_stateless_layer_panics() {
        let net = presets::mlp(&[4, 4, 2], 1);
        let c = Coordinator::from_network(
            &net,
            ClusterConfig::colocated(2, 8),
            SchemePolicy::Hybrid,
            Partition::default_kv_pairs(),
        );
        let _ = c.best_scheme(1);
    }
}
