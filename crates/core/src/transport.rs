//! In-process message transport with per-node byte accounting.
//!
//! The threaded runtime's stand-in for the cluster network: every logical
//! node gets an [`Endpoint`] with one inbox; sends are crossbeam channel
//! pushes of serialised payloads. Every payload byte that would cross a real
//! network is counted in the shared [`TrafficCounters`] — loop-back messages
//! (a worker talking to the KV shard colocated on its own node) are delivered
//! but *not* counted, matching Table 1's `(P1 + P2 − 2)/P2` accounting and
//! the simulator's ledger semantics.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed per-message header overhead charged by the byte accounting
/// (iteration, layer, chunk ids and the message tag).
pub const HEADER_BYTES: u64 = 16;

/// A message between nodes. Payloads are pre-serialised byte buffers; the
/// transport never inspects them.
#[derive(Clone, Debug)]
pub enum Message {
    /// Dense (or quantized) gradient for one KV pair, worker → server.
    GradChunk {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Chunk index within the layer.
        chunk: u32,
        /// Encoded payload.
        data: Bytes,
    },
    /// Fresh parameters for one KV pair, server → worker.
    ParamChunk {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Chunk index within the layer.
        chunk: u32,
        /// Encoded payload.
        data: Bytes,
    },
    /// A batch of sufficient factors, worker → peer (SFB) or worker → server
    /// (Adam).
    SfPush {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Encoded `SfBatch`.
        data: Bytes,
    },
    /// A dense parameter matrix, server → worker (Adam's pull path).
    ParamMatrix {
        /// Training iteration.
        iter: u64,
        /// Layer index.
        layer: u32,
        /// Encoded payload.
        data: Bytes,
    },
}

impl Message {
    /// Bytes this message would occupy on the wire.
    pub fn wire_bytes(&self) -> u64 {
        let payload = match self {
            Message::GradChunk { data, .. }
            | Message::ParamChunk { data, .. }
            | Message::SfPush { data, .. }
            | Message::ParamMatrix { data, .. } => data.len() as u64,
        };
        HEADER_BYTES + payload
    }

    /// The iteration stamp carried by the message.
    pub fn iter(&self) -> u64 {
        match self {
            Message::GradChunk { iter, .. }
            | Message::ParamChunk { iter, .. }
            | Message::SfPush { iter, .. }
            | Message::ParamMatrix { iter, .. } => *iter,
        }
    }
}

/// A delivered message plus its origin.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending node.
    pub from: usize,
    /// The message.
    pub msg: Message,
}

/// Thread-safe per-node traffic counters (bytes that crossed the "network").
#[derive(Debug)]
pub struct TrafficCounters {
    tx: Vec<AtomicU64>,
    rx: Vec<AtomicU64>,
}

impl TrafficCounters {
    fn new(nodes: usize) -> Self {
        Self {
            tx: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            rx: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Bytes sent by `node` (excluding loop-back).
    pub fn tx_bytes(&self, node: usize) -> u64 {
        self.tx[node].load(Ordering::Relaxed)
    }

    /// Bytes received by `node` (excluding loop-back).
    pub fn rx_bytes(&self, node: usize) -> u64 {
        self.rx[node].load(Ordering::Relaxed)
    }

    /// Total bytes on the network.
    pub fn total_bytes(&self) -> u64 {
        self.tx.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Per-node totals (tx + rx).
    pub fn per_node_totals(&self) -> Vec<u64> {
        (0..self.tx.len())
            .map(|n| self.tx_bytes(n) + self.rx_bytes(n))
            .collect()
    }

    fn record(&self, src: usize, dst: usize, bytes: u64) {
        if src == dst {
            return;
        }
        self.tx[src].fetch_add(bytes, Ordering::Relaxed);
        self.rx[dst].fetch_add(bytes, Ordering::Relaxed);
    }
}

/// One endpoint's attachment to the fabric.
pub struct Endpoint {
    node: usize,
    inbox: Receiver<Envelope>,
    outboxes: Vec<Sender<Envelope>>,
    dest_nodes: Vec<usize>,
    counters: Arc<TrafficCounters>,
}

impl Endpoint {
    /// The physical node this endpoint lives on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of endpoints on the fabric.
    pub fn nodes(&self) -> usize {
        self.outboxes.len()
    }

    /// Sends `msg` to endpoint `to`, recording its wire bytes against the two
    /// endpoints' physical nodes (loop-back between co-resident endpoints is
    /// excluded).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or the destination endpoint has been
    /// dropped.
    pub fn send(&self, to: usize, msg: Message) {
        self.counters
            .record(self.node, self.dest_nodes[to], msg.wire_bytes());
        self.outboxes[to]
            .send(Envelope {
                from: self.node,
                msg,
            })
            .expect("destination endpoint dropped");
    }

    /// Blocks until a message arrives.
    ///
    /// # Panics
    ///
    /// Panics if every sender has been dropped (fabric torn down).
    pub fn recv(&self) -> Envelope {
        self.inbox.recv().expect("all senders dropped")
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }
}

/// Creates a fabric of `nodes` endpoints plus the shared traffic counters.
/// Endpoint `i` lives on physical node `i`.
pub fn fabric(nodes: usize) -> (Vec<Endpoint>, Arc<TrafficCounters>) {
    let ids: Vec<usize> = (0..nodes).collect();
    fabric_with_nodes(&ids)
}

/// Creates one endpoint per entry of `node_of_endpoint`, where entry `j` is
/// the *physical node* endpoint `j` lives on. Several endpoints may share a
/// node — the paper's deployment colocates a worker and a KV-store shard on
/// every machine — and traffic between co-resident endpoints is loop-back
/// (delivered, not counted).
pub fn fabric_with_nodes(node_of_endpoint: &[usize]) -> (Vec<Endpoint>, Arc<TrafficCounters>) {
    assert!(
        !node_of_endpoint.is_empty(),
        "fabric needs at least one node"
    );
    let physical_nodes = node_of_endpoint.iter().max().expect("non-empty") + 1;
    let counters = Arc::new(TrafficCounters::new(physical_nodes));
    let mut senders = Vec::with_capacity(node_of_endpoint.len());
    let mut receivers = Vec::with_capacity(node_of_endpoint.len());
    for _ in node_of_endpoint {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let node_ids = node_of_endpoint.to_vec();
    let endpoints = receivers
        .into_iter()
        .enumerate()
        .map(|(idx, inbox)| Endpoint {
            node: node_ids[idx],
            inbox,
            outboxes: senders.clone(),
            dest_nodes: node_ids.clone(),
            counters: Arc::clone(&counters),
        })
        .collect();
    (endpoints, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(iter: u64, payload: usize) -> Message {
        Message::GradChunk {
            iter,
            layer: 0,
            chunk: 0,
            data: Bytes::from(vec![0u8; payload]),
        }
    }

    #[test]
    fn messages_are_delivered_with_origin() {
        let (eps, _) = fabric(3);
        eps[0].send(2, grad(7, 10));
        let env = eps[2].recv();
        assert_eq!(env.from, 0);
        assert_eq!(env.msg.iter(), 7);
        assert_eq!(env.msg.wire_bytes(), HEADER_BYTES + 10);
    }

    #[test]
    fn traffic_is_counted_per_node() {
        let (eps, counters) = fabric(3);
        eps[0].send(1, grad(0, 100));
        eps[0].send(2, grad(0, 50));
        eps[1].recv();
        eps[2].recv();
        assert_eq!(counters.tx_bytes(0), 2 * HEADER_BYTES + 150);
        assert_eq!(counters.rx_bytes(1), HEADER_BYTES + 100);
        assert_eq!(counters.rx_bytes(2), HEADER_BYTES + 50);
        assert_eq!(counters.total_bytes(), 2 * HEADER_BYTES + 150);
    }

    #[test]
    fn loopback_is_delivered_but_not_counted() {
        let (eps, counters) = fabric(2);
        eps[1].send(1, grad(0, 999));
        let env = eps[1].recv();
        assert_eq!(env.from, 1);
        assert_eq!(counters.total_bytes(), 0);
        assert_eq!(counters.tx_bytes(1), 0);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (eps, _) = fabric(2);
        assert!(eps[0].try_recv().is_none());
        eps[1].send(0, grad(1, 1));
        assert!(eps[0].try_recv().is_some());
        assert!(eps[0].try_recv().is_none());
    }

    #[test]
    fn endpoints_work_across_threads() {
        let (mut eps, counters) = fabric(2);
        let e1 = eps.remove(1);
        let e0 = eps.remove(0);
        let t = std::thread::spawn(move || {
            for i in 0..10 {
                e1.send(0, grad(i, 8));
            }
        });
        let mut got = 0;
        for _ in 0..10 {
            let env = e0.recv();
            assert_eq!(env.from, 1);
            got += 1;
        }
        t.join().unwrap();
        assert_eq!(got, 10);
        assert_eq!(counters.total_bytes(), 10 * (HEADER_BYTES + 8));
    }

    #[test]
    fn colocated_endpoints_share_a_node() {
        // Endpoints 0,1 are workers on nodes 0,1; endpoints 2,3 are shards on
        // the same nodes.
        let (eps, counters) = fabric_with_nodes(&[0, 1, 0, 1]);
        // Worker 0 → its local shard (endpoint 2, node 0): loop-back.
        eps[0].send(2, grad(0, 100));
        eps[2].recv();
        assert_eq!(counters.total_bytes(), 0);
        // Worker 0 → remote shard (endpoint 3, node 1): counted.
        eps[0].send(3, grad(0, 100));
        eps[3].recv();
        assert_eq!(counters.tx_bytes(0), HEADER_BYTES + 100);
        assert_eq!(counters.rx_bytes(1), HEADER_BYTES + 100);
    }

    #[test]
    fn per_node_totals_sum_tx_and_rx() {
        let (eps, counters) = fabric(2);
        eps[0].send(1, grad(0, 10));
        eps[1].send(0, grad(0, 20));
        let totals = counters.per_node_totals();
        assert_eq!(totals[0], (HEADER_BYTES + 10) + (HEADER_BYTES + 20));
        assert_eq!(totals[0], totals[1]);
    }
}
