//! Deterministic fault injection for the comm plane.
//!
//! A [`FaultPlan`] scripts failures on *logical* counters — the n-th data
//! frame on a (sender endpoint → receiver endpoint) link, or the frame of a
//! given (iteration, layer) — never on wall-clock time, so a chaos run is
//! exactly reproducible: the same plan fires the same faults on the same
//! frames every run, and bitwise equivalence against the fault-free run
//! stays provable (the invariant PR 2–4 established for threads, transports,
//! and tracing, extended here to failure).
//!
//! [`FaultyTransport`] interposes on the *send* path of any
//! [`Transport`]: it counts original data frames per link and, when a plan
//! event matches, drops, duplicates, delays (reorders), severs the physical
//! link under, or black-holes the frame. Three classes of traffic pass
//! through unfaulted and uncounted, which is what keeps plans deterministic
//! under recovery:
//!
//! - **Control frames** (`Ack`/`Nack`) — the repair channel itself.
//! - **Retransmissions** (sequence number ≤ the link's high-water mark) —
//!   otherwise a retransmit would advance the frame counter and shift which
//!   frame a later event fires on, making the fired-event log depend on
//!   recovery timing.
//! - **Black-holed links** swallow *everything*, including control frames —
//!   modelling a dead peer that the runtime must detect with a bounded
//!   [`TimeoutDiag`](crate::transport::TimeoutDiag)-bearing abort.
//!
//! Every fired fault is appended to a shared log ([`FaultyTransport::log`])
//! for chaos-suite assertions, and emitted as a `fault.*` telemetry instant
//! so recovery is visible in Chrome traces next to the `reconnect` /
//! `retransmit` instants of the layers that heal it.
//!
//! Plans have a compact text form for `poseidon-node --fault-plan`:
//!
//! ```text
//! plan   := event (';' event)*
//! event  := action ':' from '>' to '@' trigger
//! action := 'drop' | 'dup' | 'delay' COUNT? | 'sever' | 'hole'
//! trigger:= 'n' N        -- the N-th original data frame on the link
//!         | 'e' N        -- every N-th original data frame
//!         | 'i' N 'l' L  -- first frame stamped iteration N, layer L
//! ```
//!
//! `drop:0>2@n3` drops the 3rd frame worker 0 sends endpoint 2;
//! `delay2:1>3@i1l0` holds worker 1's (iter 1, layer 0) frame to endpoint 3
//! until two more frames have passed it; `sever:0>2@n5` cuts the socket
//! under the 5th frame (which then reconnects and retransmits);
//! `hole:1>2@n4` kills the link for good from the 4th frame on.

use crate::telemetry;
use crate::transport::{Envelope, Message, TrafficCounters, Transport, TransportError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a fired fault does to the frame that triggered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the frame (the reliability layer must retransmit it).
    Drop,
    /// Send the frame twice (the reliability layer must deduplicate).
    Duplicate,
    /// Hold the frame until `hold` further original frames have been sent
    /// on the link, then release it (out of order; the reliability layer
    /// must reorder).
    Delay {
        /// Original frames that overtake the held one.
        hold: u32,
    },
    /// Sever the physical link under the frame, then send it — the
    /// transport must reconnect (and, on TCP, rewrite the frame).
    Sever,
    /// Kill the link from this frame on: swallow it and *everything* after,
    /// control frames included. The peer must reach a bounded dead-peer
    /// verdict.
    Blackhole,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Duplicate => write!(f, "dup"),
            FaultAction::Delay { hold } => write!(f, "delay{hold}"),
            FaultAction::Sever => write!(f, "sever"),
            FaultAction::Blackhole => write!(f, "hole"),
        }
    }
}

/// When an event fires, in logical (not wall-clock) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The `n`-th original data frame on the link (1-based), once.
    NthFrame(u64),
    /// Every `n`-th original data frame on the link, repeatedly.
    EveryNth(u64),
    /// The first original frame stamped (iteration, layer), once.
    IterLayer(u64, u32),
}

impl std::fmt::Display for FaultTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTrigger::NthFrame(n) => write!(f, "n{n}"),
            FaultTrigger::EveryNth(n) => write!(f, "e{n}"),
            FaultTrigger::IterLayer(i, l) => write!(f, "i{i}l{l}"),
        }
    }
}

/// One scripted fault on one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Sending endpoint (whose `FaultyTransport` enforces the event).
    pub from: usize,
    /// Receiving endpoint.
    pub to: usize,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub action: FaultAction,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}>{}@{}",
            self.action, self.from, self.to, self.trigger
        )
    }
}

/// A deterministic script of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted events; evaluated in order, first match wins per frame.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a `FaultyTransport` carrying it is transparent.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the compact text form (see module docs). Whitespace around
    /// events is ignored; an empty string is the empty plan.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for raw in text.split(';') {
            let spec = raw.trim();
            if spec.is_empty() {
                continue;
            }
            events.push(parse_event(spec)?);
        }
        Ok(Self { events })
    }

    /// A small pseudo-random plan derived from `seed`: a handful of
    /// recoverable faults (drops, dups, delays) spread over the cross-node
    /// links of a fabric with `endpoints` endpoints where endpoint `i` and
    /// `i + endpoints/2` share a node. Deterministic in `seed`.
    pub fn seeded(seed: u64, endpoints: usize) -> Self {
        assert!(endpoints >= 4, "seeded plans need at least a 2-worker mesh");
        // xorshift64*: tiny, dependency-free, and plenty for scripting.
        let mut s = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s = s.wrapping_mul(2685821657736338717);
            s
        };
        let half = endpoints / 2;
        let mut events = Vec::new();
        for _ in 0..4 {
            // Pick a cross-node ordered pair (different node ⇒ not i ↔ i+half).
            let (from, to) = loop {
                let a = (next() % endpoints as u64) as usize;
                let b = (next() % endpoints as u64) as usize;
                if a != b && a % half != b % half {
                    break (a, b);
                }
            };
            let action = match next() % 3 {
                0 => FaultAction::Drop,
                1 => FaultAction::Duplicate,
                _ => FaultAction::Delay {
                    hold: 1 + (next() % 2) as u32,
                },
            };
            let trigger = FaultTrigger::NthFrame(1 + next() % 6);
            events.push(FaultEvent {
                from,
                to,
                trigger,
                action,
            });
        }
        Self { events }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

fn parse_event(spec: &str) -> Result<FaultEvent, String> {
    let (action_s, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("event `{spec}`: missing `:`"))?;
    let (link_s, trigger_s) = rest
        .split_once('@')
        .ok_or_else(|| format!("event `{spec}`: missing `@trigger`"))?;
    let (from_s, to_s) = link_s
        .split_once('>')
        .ok_or_else(|| format!("event `{spec}`: link must be `from>to`"))?;
    let from: usize = from_s
        .trim()
        .parse()
        .map_err(|_| format!("event `{spec}`: bad sender `{from_s}`"))?;
    let to: usize = to_s
        .trim()
        .parse()
        .map_err(|_| format!("event `{spec}`: bad receiver `{to_s}`"))?;
    let action = match action_s.trim() {
        "drop" => FaultAction::Drop,
        "dup" => FaultAction::Duplicate,
        "sever" => FaultAction::Sever,
        "hole" => FaultAction::Blackhole,
        a if a.starts_with("delay") => {
            let count = &a["delay".len()..];
            let hold: u32 = if count.is_empty() {
                1
            } else {
                count
                    .parse()
                    .map_err(|_| format!("event `{spec}`: bad delay count `{count}`"))?
            };
            FaultAction::Delay { hold }
        }
        other => return Err(format!("event `{spec}`: unknown action `{other}`")),
    };
    let t = trigger_s.trim();
    let trigger = if let Some(n) = t.strip_prefix('n') {
        FaultTrigger::NthFrame(
            n.parse()
                .map_err(|_| format!("event `{spec}`: bad frame index `{n}`"))?,
        )
    } else if let Some(n) = t.strip_prefix('e') {
        let every: u64 = n
            .parse()
            .map_err(|_| format!("event `{spec}`: bad period `{n}`"))?;
        if every == 0 {
            return Err(format!("event `{spec}`: period must be ≥ 1"));
        }
        FaultTrigger::EveryNth(every)
    } else if let Some(rest) = t.strip_prefix('i') {
        let (i, l) = rest
            .split_once('l')
            .ok_or_else(|| format!("event `{spec}`: iter trigger is `iNlL`"))?;
        FaultTrigger::IterLayer(
            i.parse()
                .map_err(|_| format!("event `{spec}`: bad iteration `{i}`"))?,
            l.parse()
                .map_err(|_| format!("event `{spec}`: bad layer `{l}`"))?,
        )
    } else {
        return Err(format!("event `{spec}`: unknown trigger `{t}`"));
    };
    Ok(FaultEvent {
        from,
        to,
        trigger,
        action,
    })
}

/// One fault that actually fired, in logical coordinates — the chaos suite
/// compares these logs across runs to prove plans are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Sending endpoint.
    pub from: usize,
    /// Receiving endpoint.
    pub to: usize,
    /// 1-based original-frame index on the link when the event fired.
    pub frame: u64,
    /// The action taken.
    pub action: FaultAction,
    /// Wire tag of the affected frame.
    pub tag: &'static str,
    /// Iteration stamp of the affected frame.
    pub iter: u64,
    /// Layer stamp of the affected frame.
    pub layer: u32,
}

/// Per-event firing state.
#[derive(Debug)]
struct EventState {
    ev: FaultEvent,
    /// One-shot triggers flip this after firing.
    spent: bool,
}

/// Per-destination link state of one faulty endpoint.
#[derive(Debug, Default)]
struct LinkState {
    /// Original data frames sent on this link.
    sent: u64,
    /// Highest sequence number seen from the reliable layer; anything at or
    /// below is a retransmission and passes unfaulted.
    max_seq: u32,
    /// Delayed frames: `(release_after_frame, seq, msg)`.
    held: Vec<(u64, u32, Message)>,
    /// A `Blackhole` fired: swallow everything from now on.
    dead: bool,
}

struct FaultState {
    events: Vec<EventState>,
    links: Vec<LinkState>,
}

/// A [`Transport`] wrapper executing a [`FaultPlan`] on the send path; see
/// the module docs for semantics and determinism rules.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    state: Mutex<FaultState>,
    log: Arc<Mutex<Vec<FiredFault>>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, keeping only the plan events whose `from` is this
    /// endpoint (each endpoint enforces its own outbound faults).
    pub fn new(inner: T, plan: &FaultPlan) -> Self {
        let me = inner.endpoint_id();
        let n = inner.endpoints();
        let events = plan
            .events
            .iter()
            .filter(|ev| ev.from == me)
            .map(|ev| EventState {
                ev: *ev,
                spent: false,
            })
            .collect();
        let links = (0..n).map(|_| LinkState::default()).collect();
        Self {
            inner,
            state: Mutex::new(FaultState { events, links }),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the fired-fault log (usable after the endpoint moved into
    /// its runtime thread).
    pub fn log(&self) -> Arc<Mutex<Vec<FiredFault>>> {
        Arc::clone(&self.log)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The first unspent event matching frame `n` of link `me → to`.
    fn match_event(
        events: &mut [EventState],
        to: usize,
        n: u64,
        msg: &Message,
    ) -> Option<FaultAction> {
        for st in events.iter_mut() {
            if st.spent || st.ev.to != to {
                continue;
            }
            let hit = match st.ev.trigger {
                FaultTrigger::NthFrame(want) => n == want,
                FaultTrigger::EveryNth(every) => n.is_multiple_of(every),
                FaultTrigger::IterLayer(iter, layer) => msg.iter() == iter && msg.layer() == layer,
            };
            if hit {
                if !matches!(st.ev.trigger, FaultTrigger::EveryNth(_)) {
                    st.spent = true;
                }
                return Some(st.ev.action);
            }
        }
        None
    }

    fn fire(&self, to: usize, frame: u64, action: FaultAction, msg: &Message) {
        let name = match action {
            FaultAction::Drop => "fault.drop",
            FaultAction::Duplicate => "fault.dup",
            FaultAction::Delay { .. } => "fault.delay",
            FaultAction::Sever => "fault.sever",
            FaultAction::Blackhole => "fault.blackhole",
        };
        telemetry::instant(name, to as u64, frame);
        self.log.lock().expect("fault log lock").push(FiredFault {
            from: self.inner.endpoint_id(),
            to,
            frame,
            action,
            tag: msg.tag_name(),
            iter: msg.iter(),
            layer: msg.layer(),
        });
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node(&self) -> usize {
        self.inner.node()
    }

    fn endpoint_id(&self) -> usize {
        self.inner.endpoint_id()
    }

    fn endpoints(&self) -> usize {
        self.inner.endpoints()
    }

    fn traffic(&self) -> &Arc<TrafficCounters> {
        self.inner.traffic()
    }

    fn send_seq(&self, to: usize, msg: Message, seq: u32) -> Result<(), TransportError> {
        let mut st = self.state.lock().expect("fault state lock");
        let FaultState { events, links } = &mut *st;
        let link = &mut links[to];
        if link.dead {
            // Black-holed: swallow everything, control included. The link
            // is gone; only the peer's bounded timeout notices.
            return Ok(());
        }
        // Control frames and retransmissions pass unfaulted and uncounted:
        // faulting the repair channel (outside a blackhole) would make the
        // fired-event log depend on recovery timing.
        let original = seq == 0 || seq > link.max_seq;
        if msg.is_control() || !original {
            drop(st);
            return self.inner.send_seq(to, msg, seq);
        }
        link.max_seq = link.max_seq.max(seq);
        link.sent += 1;
        let n = link.sent;
        let action = Self::match_event(events, to, n, &msg);
        // Frames whose hold expires with this send (released *after* it, so
        // a `delay1` frame is overtaken by exactly one frame).
        let due: Vec<(u32, Message)> = {
            let mut due = Vec::new();
            link.held.retain(|(release_after, s, m)| {
                if *release_after <= n {
                    due.push((*s, m.clone()));
                    false
                } else {
                    true
                }
            });
            due
        };
        match action {
            None => {
                drop(st);
                self.inner.send_seq(to, msg, seq)?;
            }
            Some(FaultAction::Drop) => {
                self.fire(to, n, FaultAction::Drop, &msg);
                drop(st);
            }
            Some(FaultAction::Duplicate) => {
                self.fire(to, n, FaultAction::Duplicate, &msg);
                drop(st);
                self.inner.send_seq(to, msg.clone(), seq)?;
                self.inner.send_seq(to, msg, seq)?;
            }
            Some(FaultAction::Delay { hold }) => {
                self.fire(to, n, FaultAction::Delay { hold }, &msg);
                link.held.push((n + hold as u64, seq, msg));
                drop(st);
            }
            Some(FaultAction::Sever) => {
                self.fire(to, n, FaultAction::Sever, &msg);
                drop(st);
                self.inner.sever_link(to)?;
                self.inner.send_seq(to, msg, seq)?;
            }
            Some(FaultAction::Blackhole) => {
                self.fire(to, n, FaultAction::Blackhole, &msg);
                link.dead = true;
                drop(st);
            }
        }
        for (s, m) in due {
            self.inner.send_seq(to, m, s)?;
        }
        Ok(())
    }

    fn sever_link(&self, to: usize) -> Result<(), TransportError> {
        self.inner.sever_link(to)
    }

    fn recv(&self) -> Result<Envelope, TransportError> {
        self.inner.recv()
    }

    fn try_recv(&self) -> Result<Option<Envelope>, TransportError> {
        self.inner.try_recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    fn set_epoch(&self, epoch: u32) {
        self.inner.set_epoch(epoch);
    }

    fn current_epoch(&self) -> u32 {
        self.inner.current_epoch()
    }

    fn shutdown(&mut self) -> Result<(), TransportError> {
        // Flush frames still held by unexpired delays (their release point
        // never came) so recoverable plans lose nothing at teardown.
        type HeldFrames = Vec<(u64, u32, Message)>;
        let flush: Vec<(usize, HeldFrames)> = {
            let mut st = self.state.lock().expect("fault state lock");
            st.links
                .iter_mut()
                .enumerate()
                .filter(|(_, l)| !l.dead)
                .map(|(to, l)| (to, std::mem::take(&mut l.held)))
                .collect()
        };
        for (to, held) in flush {
            for (_, seq, msg) in held {
                let _ = self.inner.send_seq(to, msg, seq);
            }
        }
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::fabric;
    use bytes::Bytes;

    fn grad(iter: u64, layer: u32) -> Message {
        Message::GradChunk {
            iter,
            layer,
            chunk: 0,
            codec: crate::wire::Codec::Identity,
            data: Bytes::from(vec![2u8; 6]),
        }
    }

    #[test]
    fn plan_round_trips_through_text() {
        let text = "drop:0>2@n3;dup:1>3@e2;delay2:0>3@i1l4;sever:2>0@n5;hole:1>2@n9";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.events.len(), 5);
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert_eq!(plan.events[2].action, FaultAction::Delay { hold: 2 },);
        assert_eq!(plan.events[2].trigger, FaultTrigger::IterLayer(1, 4));
        // Bare `delay` means hold 1.
        let p = FaultPlan::parse("delay:0>1@n1").unwrap();
        assert_eq!(p.events[0].action, FaultAction::Delay { hold: 1 });
        // Empty and whitespace plans are empty.
        assert!(FaultPlan::parse("").unwrap().events.is_empty());
        assert!(FaultPlan::parse(" ; ").unwrap().events.is_empty());
    }

    #[test]
    fn malformed_plans_are_rejected_with_context() {
        for bad in [
            "zap:0>1@n1",
            "drop:0-1@n1",
            "drop:0>1",
            "drop:0>1@x3",
            "drop:a>1@n1",
            "dup:0>1@e0",
            "delayx:0>1@n1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains('`'), "error should quote the spec: {err}");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 4);
        let b = FaultPlan::seeded(7, 4);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 4);
        let c = FaultPlan::seeded(8, 4);
        assert_ne!(a, c, "different seeds give different plans");
        for ev in &a.events {
            assert!(ev.from < 4 && ev.to < 4);
            assert_ne!(ev.from % 2, ev.to % 2, "cross-node links only");
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let a = FaultyTransport::new(eps.remove(0), &FaultPlan::empty());
        for i in 0..10 {
            a.send_seq(1, grad(i, 0), i as u32 + 1).unwrap();
        }
        for i in 0..10 {
            let env = b.recv().unwrap();
            assert_eq!(env.msg.iter(), i);
            assert_eq!(env.seq, i as u32 + 1);
        }
        assert!(a.log().lock().unwrap().is_empty());
    }

    #[test]
    fn drop_swallows_exactly_the_scripted_frame() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("drop:0>1@n2").unwrap();
        let a = FaultyTransport::new(eps.remove(0), &plan);
        for i in 1..=4u32 {
            a.send_seq(1, grad(i as u64, 0), i).unwrap();
        }
        let seqs: Vec<u32> = (0..3).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 3, 4], "frame 2 was dropped");
        let log = a.log();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].frame, 2);
        assert_eq!(log[0].action, FaultAction::Drop);
        // A retransmission of the dropped frame passes unfaulted.
        drop(log);
        a.send_seq(1, grad(2, 0), 2).unwrap();
        assert_eq!(b.recv().unwrap().seq, 2);
        assert_eq!(a.log().lock().unwrap().len(), 1, "no new event fired");
    }

    #[test]
    fn delay_reorders_by_the_scripted_hold() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("delay2:0>1@n1").unwrap();
        let a = FaultyTransport::new(eps.remove(0), &plan);
        for i in 1..=4u32 {
            a.send_seq(1, grad(i as u64, 0), i).unwrap();
        }
        let seqs: Vec<u32> = (0..4).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![2, 3, 1, 4], "frame 1 held past frames 2 and 3");
    }

    #[test]
    fn unreleased_delay_flushes_at_shutdown() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("delay9:0>1@n2").unwrap();
        let mut a = FaultyTransport::new(eps.remove(0), &plan);
        a.send_seq(1, grad(1, 0), 1).unwrap();
        a.send_seq(1, grad(2, 0), 2).unwrap();
        a.shutdown().unwrap();
        let seqs: Vec<u32> = (0..2).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2], "held frame flushed before FIN");
    }

    #[test]
    fn duplicate_sends_twice_and_every_nth_repeats() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("dup:0>1@e2").unwrap();
        let a = FaultyTransport::new(eps.remove(0), &plan);
        for i in 1..=4u32 {
            a.send_seq(1, grad(i as u64, 0), i).unwrap();
        }
        let seqs: Vec<u32> = (0..6).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2, 2, 3, 4, 4], "frames 2 and 4 doubled");
        assert_eq!(a.log().lock().unwrap().len(), 2);
    }

    #[test]
    fn blackhole_swallows_everything_after_it() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("hole:0>1@n2").unwrap();
        let a = FaultyTransport::new(eps.remove(0), &plan);
        a.send_seq(1, grad(1, 0), 1).unwrap();
        a.send_seq(1, grad(2, 0), 2).unwrap(); // eaten
        a.send_seq(1, grad(3, 0), 3).unwrap(); // eaten
        a.send(1, Message::Nack { expect: 1 }).unwrap(); // control eaten too
        assert_eq!(b.recv().unwrap().seq, 1);
        assert!(b.try_recv().unwrap().is_none(), "the link is dead");
    }

    #[test]
    fn iter_layer_trigger_hits_the_stamped_frame() {
        let (mut eps, _) = fabric(2);
        let b = eps.remove(1);
        let plan = FaultPlan::parse("drop:0>1@i2l5").unwrap();
        let a = FaultyTransport::new(eps.remove(0), &plan);
        a.send_seq(1, grad(1, 5), 1).unwrap();
        a.send_seq(1, grad(2, 4), 2).unwrap();
        a.send_seq(1, grad(2, 5), 3).unwrap(); // dropped
        a.send_seq(1, grad(2, 5), 4).unwrap(); // one-shot: passes
        let seqs: Vec<u32> = (0..3).map(|_| b.recv().unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2, 4]);
        let log = a.log();
        let log = log.lock().unwrap();
        assert_eq!((log[0].iter, log[0].layer), (2, 5));
    }
}
