//! Property tests for the wire layer: every frame variant round-trips
//! bit-exactly through the codec (including the v3 codec tag in the layer
//! word), truncation is always reported as `Incomplete` (never a panic or a
//! garbage message), corrupt headers are rejected with the precise error, and
//! every payload codec in the registry survives its own round-trip while
//! rejecting truncated payloads.

use bytes::Bytes;
use poseidon::transport::{fabric, stale_epoch_frames, Message, Transport};
use poseidon::wire::{
    decode_codec, decode_frame, encode_frame, encode_frame_stamped, parse_header, Codec,
    FrameError, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_VERSION, MAX_LAYER_INDEX,
};
use poseidon_tensor::bytesio;
use poseidon_tensor::compress::make_compressor;
use poseidon_tensor::sf::{SfBatch, SufficientFactor};
use proptest::prelude::*;

/// A strategy over every codec the registry knows. The wire carries only the
/// discriminant, so `TopK` uses the default density (what `from_wire_id`
/// reconstructs) to keep frame round-trips bit-exact.
fn any_wire_codec() -> impl Strategy<Value = Codec> {
    (0u8..5).prop_map(|id| Codec::from_wire_id(id).expect("ids 0..5 are all registered"))
}

/// A strategy over every message variant — the six data frames with
/// arbitrary header fields and an arbitrary opaque payload, plus the two
/// payload-free control frames of the reliability layer. Gradient-bearing
/// variants additionally carry an arbitrary codec tag.
fn any_message() -> impl Strategy<Value = Message> {
    let payload = proptest::collection::vec(any::<u8>(), 0..512);
    (
        any::<u64>(),
        0u32..=MAX_LAYER_INDEX,
        any::<u32>(),
        payload,
        any_wire_codec(),
        0u8..8,
    )
        .prop_map(|(iter, layer, chunk, data, codec, variant)| {
            let data = Bytes::from(data);
            match variant {
                0 => Message::GradChunk {
                    iter,
                    layer,
                    chunk,
                    codec,
                    data,
                },
                1 => Message::ParamChunk {
                    iter,
                    layer,
                    chunk,
                    codec,
                    data,
                },
                2 => Message::SfPush { iter, layer, data },
                3 => Message::ParamMatrix { iter, layer, data },
                4 => Message::Ack { upto: iter },
                5 => Message::Collective {
                    iter,
                    layer,
                    route: chunk,
                    codec,
                    data,
                },
                6 => Message::Handoff {
                    iter,
                    layer,
                    chunk,
                    data,
                },
                _ => Message::Nack { expect: iter },
            }
        })
}

/// `(iter-field operand, layer, chunk, payload length)` of the frame header
/// the message encodes to. Control frames carry their operand in the iter
/// field and no payload.
fn header_fields(msg: &Message) -> (u64, u32, Option<u32>, usize) {
    match msg {
        Message::GradChunk {
            iter,
            layer,
            chunk,
            data,
            ..
        }
        | Message::ParamChunk {
            iter,
            layer,
            chunk,
            data,
            ..
        } => (*iter, *layer, Some(*chunk), data.len()),
        Message::Collective {
            iter,
            layer,
            route,
            data,
            ..
        } => (*iter, *layer, Some(*route), data.len()),
        Message::Handoff {
            iter,
            layer,
            chunk,
            data,
        } => (*iter, *layer, Some(*chunk), data.len()),
        Message::SfPush { iter, layer, data } | Message::ParamMatrix { iter, layer, data } => {
            (*iter, *layer, None, data.len())
        }
        Message::Ack { upto } => (*upto, 0, None, 0),
        Message::Nack { expect } => (*expect, 0, None, 0),
    }
}

/// The codec tag a message stamps into its frame, if its variant carries one.
fn codec_of(msg: &Message) -> Option<Codec> {
    match msg {
        Message::GradChunk { codec, .. }
        | Message::ParamChunk { codec, .. }
        | Message::Collective { codec, .. } => Some(*codec),
        _ => None,
    }
}

proptest! {
    #[test]
    fn every_variant_roundtrips_bit_exactly(msg in any_message()) {
        let frame = encode_frame(&msg);
        let (iter, _, _, payload_len) = header_fields(&msg);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len);
        prop_assert_eq!(msg.wire_bytes(), frame.len() as u64);

        let (decoded, consumed) = decode_frame(&frame).expect("own frame must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.iter(), iter);
        prop_assert_eq!(codec_of(&decoded), codec_of(&msg), "codec tag lost in flight");
        // Same variant, same fields, same payload <=> identical re-encoding.
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    #[test]
    fn any_strict_prefix_is_incomplete(msg in any_message(), cut_frac in 0.0f64..1.0) {
        let frame = encode_frame(&msg);
        let cut = ((frame.len() as f64) * cut_frac) as usize; // < len
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Incomplete { needed }) => {
                prop_assert!(needed > cut, "needed {} <= cut {}", needed, cut);
                prop_assert!(needed <= frame.len());
            }
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
        }
        // And trailing garbage does not confuse the decode of frame one.
        let mut padded = frame.to_vec();
        padded.extend_from_slice(&[0xAA; 7]);
        let (_, consumed) = decode_frame(&padded).expect("padded frame");
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn corrupt_magic_version_tag_codec_are_rejected(
        msg in any_message(),
        bad_magic in any::<[u8; 2]>(),
        bad_version in any::<u8>(),
        bad_tag in 9u8..,
        bad_codec in 5u8..,
    ) {
        let frame = encode_frame(&msg).to_vec();

        if bad_magic != FRAME_MAGIC {
            let mut f = frame.clone();
            f[0] = bad_magic[0];
            f[1] = bad_magic[1];
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadMagic(bad_magic))
            );
        }
        if bad_version != FRAME_VERSION {
            let mut f = frame.clone();
            f[2] = bad_version;
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadVersion(bad_version))
            );
        }
        {
            // Byte 15 is the top byte of the little-endian layer word — the
            // codec id. An unregistered id must surface as BadCodec, for
            // every variant (even those that always stamp identity).
            let mut f = frame.clone();
            f[15] = bad_codec;
            prop_assert_eq!(decode_frame(&f).err(), Some(FrameError::BadCodec(bad_codec)));
        }
        let mut f = frame;
        f[3] = bad_tag;
        prop_assert_eq!(decode_frame(&f).err(), Some(FrameError::BadTag(bad_tag)));
    }

    /// A realistic SFB payload survives the full path: factor batch ->
    /// payload codec -> frame -> decode -> payload codec.
    #[test]
    fn sf_push_payload_roundtrips_through_the_frame(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..6,
        seed in any::<u32>(),
    ) {
        let mut batch = SfBatch::new();
        for s in 0..k {
            let val = |i: usize| (seed.wrapping_add((s * 31 + i) as u32) % 1000) as f32 / 97.0 - 5.0;
            batch.push(SufficientFactor::new(
                (0..m).map(val).collect(),
                (0..n).map(|i| val(i + m)).collect(),
            ));
        }
        let msg = Message::SfPush {
            iter: 3,
            layer: 1,
            data: bytesio::encode_sf_batch(&batch),
        };
        let frame = encode_frame(&msg);
        prop_assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + bytesio::sf_batch_wire_bytes(k, m, n)
        );
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::SfPush { data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        let back = bytesio::decode_sf_batch(&data).expect("sf payload");
        prop_assert_eq!(back.len(), k);
        for (a, b) in back.factors().iter().zip(batch.factors()) {
            prop_assert_eq!(&a.u, &b.u);
            prop_assert_eq!(&a.v, &b.v);
        }
    }

    /// Every registry codec's payload survives framing bit-exactly: the bytes
    /// a compressor emits come out of the frame unchanged and decode to the
    /// same values whether or not they crossed the wire.
    #[test]
    fn codec_payloads_roundtrip_through_the_frame(
        codec in any_wire_codec(),
        vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
        layer in 0u32..=MAX_LAYER_INDEX,
    ) {
        let mut comp = make_compressor(codec, vals.len());
        let payload = comp.compress(&vals);
        prop_assert_eq!(payload.len(), codec.payload_bytes(vals.len()));
        let direct = decode_codec(codec, &payload, vals.len()).expect("own payload decodes");

        let msg = Message::GradChunk {
            iter: 2,
            layer,
            chunk: 0,
            codec,
            data: payload,
        };
        let frame = encode_frame(&msg);
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::GradChunk { codec: tag, data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        prop_assert_eq!(tag.wire_id(), codec.wire_id());
        let via_wire = decode_codec(tag, &data, vals.len()).expect("framed payload decodes");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&via_wire), bits(&direct));
        if codec.is_lossless() {
            prop_assert_eq!(bits(&via_wire), bits(&vals));
        }
    }

    /// Chopping bytes off the end of any codec's payload is always surfaced
    /// as a `CodecError` — never a panic, never a silently-short decode.
    #[test]
    fn truncated_codec_payloads_are_rejected(
        codec in any_wire_codec(),
        vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut comp = make_compressor(codec, vals.len());
        let payload = comp.compress(&vals);
        // Never empty: vals has >= 1 element, every codec emits framing bytes.
        let cut = ((payload.len() as f64) * cut_frac) as usize; // < len
        prop_assert!(
            decode_codec(codec, &payload[..cut], vals.len()).is_err(),
            "{} accepted a {}-of-{}-byte prefix",
            codec,
            cut,
            payload.len()
        );
    }

    /// Residual-carrying codecs are bitwise deterministic: two independent
    /// compressor instances fed the same sequence of tensors emit identical
    /// bytes at every step, so replicas and reruns stay reproducible.
    #[test]
    fn residual_state_is_deterministic_across_instances(
        codec in any_wire_codec(),
        rounds in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 32),
            1..6
        ),
    ) {
        let mut a = make_compressor(codec, 32);
        let mut b = make_compressor(codec, 32);
        for (i, vals) in rounds.iter().enumerate() {
            let pa = a.compress(vals);
            let pb = b.compress(vals);
            prop_assert_eq!(&pa[..], &pb[..], "{} diverged at round {}", codec, i);
        }
    }

    /// v4: an arbitrary membership-epoch stamp round-trips through every
    /// frame variant (alongside `src`/`seq`) and never perturbs the
    /// reassembled message, and any strict prefix of a stamped frame is
    /// still `Incomplete` — never a garbage decode.
    #[test]
    fn epoch_stamp_roundtrips_through_every_variant(
        msg in any_message(),
        src in any::<u32>(),
        seq in any::<u32>(),
        epoch in any::<u32>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame_stamped(&msg, src, seq, epoch);
        let hdr: [u8; FRAME_HEADER_BYTES] = frame[..FRAME_HEADER_BYTES]
            .try_into()
            .expect("header-sized slice");
        let parsed = parse_header(&hdr).expect("own header must parse");
        prop_assert_eq!(parsed.epoch, epoch, "epoch word lost in flight");
        prop_assert_eq!(parsed.src, src);
        prop_assert_eq!(parsed.seq, seq);

        // The stamp rides the header only: the message reassembles
        // identically however it was stamped.
        let (decoded, consumed) = decode_frame(&frame).expect("own frame must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(encode_frame(&decoded), encode_frame(&msg));

        let cut = ((frame.len() as f64) * cut_frac) as usize; // < len
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Incomplete { needed }) => prop_assert!(needed > cut),
            other => prop_assert!(false, "stamped prefix of {} bytes gave {:?}", cut, other),
        }
    }

    /// The receive-side epoch fence, driven through a real transport: a data
    /// frame from a stale epoch is dropped *and counted*, never delivered;
    /// control frames and current/future epochs always pass. Exhaustive over
    /// small (sender, receiver) epoch pairs by proptest.
    #[test]
    fn inproc_epoch_fence_admits_exactly_non_stale_frames(
        sender_epoch in 0u32..5,
        receiver_epoch in 0u32..5,
        control in any::<bool>(),
    ) {
        let (eps, _) = fabric(2);
        eps[0].set_epoch(sender_epoch);
        eps[1].set_epoch(receiver_epoch);
        let msg = if control {
            Message::Ack { upto: 9 }
        } else {
            Message::GradChunk {
                iter: 1,
                layer: 0,
                chunk: 0,
                codec: Codec::Identity,
                data: Bytes::copy_from_slice(&[1, 2, 3, 4]),
            }
        };
        let dropped_before = stale_epoch_frames();
        eps[0].send(1, msg).expect("send");
        let got = eps[1].try_recv().expect("fabric alive");
        if control || sender_epoch >= receiver_epoch {
            let env = got.expect("non-stale frame must be delivered");
            prop_assert_eq!(env.epoch, sender_epoch, "envelope carries the sender's epoch");
        } else {
            prop_assert!(got.is_none(), "stale data frame must be dropped");
            // Other tests in this binary may drop frames concurrently, so
            // the process-wide counter is gated as a lower bound.
            prop_assert!(stale_epoch_frames() > dropped_before, "drop must be counted");
        }
    }
}

/// The same fence over the evented TCP transport: a socket-delivered data
/// frame stamped with a stale epoch is observed (traffic counted) but never
/// surfaced from `recv`, while the next current-epoch frame is.
#[test]
fn tcp_epoch_fence_drops_and_counts_stale_frames() {
    use poseidon::transport::{bind_ephemeral, TcpFabricSpec, TcpTransport};
    use std::time::Duration;

    let (listeners, addrs) = bind_ephemeral(2).expect("bind");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: vec![0, 1],
        connect_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        reconnect_timeout: Duration::from_secs(5),
    };
    let mut ls = listeners.into_iter();
    let (l0, l1) = (ls.next().expect("l0"), ls.next().expect("l1"));
    let spec2 = spec.clone();
    let receiver = std::thread::spawn(move || {
        let mut ep = TcpTransport::connect_with_listener(&spec2, 1, l1, None).expect("connect");
        ep.set_epoch(1);
        let dropped_before = stale_epoch_frames();
        // The stale frame (epoch 0) is dropped inside this recv; only the
        // fresh frame (epoch 1) that follows it on the same stream surfaces.
        let env = ep
            .recv_timeout(Duration::from_secs(30))
            .expect("fresh frame");
        assert_eq!(env.epoch, 1, "only the current-epoch frame is delivered");
        let Message::GradChunk { chunk, .. } = env.msg else {
            panic!("unexpected variant");
        };
        assert_eq!(chunk, 7, "the fresh frame, not the stale one");
        assert!(
            stale_epoch_frames() > dropped_before,
            "stale drop must be counted"
        );
        ep.shutdown().expect("shutdown");
    });
    let mut ep = TcpTransport::connect_with_listener(&spec, 0, l0, None).expect("connect");
    let chunk_at = |chunk: u32| Message::GradChunk {
        iter: 3,
        layer: 0,
        chunk,
        codec: Codec::Identity,
        data: Bytes::copy_from_slice(&[9, 9]),
    };
    ep.send(1, chunk_at(6)).expect("stale send"); // epoch 0: fenced out
    ep.set_epoch(1);
    ep.send(1, chunk_at(7)).expect("fresh send"); // epoch 1: delivered
    receiver.join().expect("receiver");
    ep.shutdown().expect("shutdown");
}
