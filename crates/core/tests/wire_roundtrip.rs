//! Property tests for the wire layer: every frame variant round-trips
//! bit-exactly through the codec, truncation is always reported as
//! `Incomplete` (never a panic or a garbage message), and corrupt headers
//! are rejected with the precise error.

use bytes::Bytes;
use poseidon::transport::Message;
use poseidon::wire::{
    decode_frame, encode_frame, encode_onebit, FrameError, FRAME_HEADER_BYTES, FRAME_MAGIC,
    FRAME_VERSION, LAYER_GRANULAR_CHUNK,
};
use poseidon_tensor::bytesio;
use poseidon_tensor::quantize::OneBitQuantizer;
use poseidon_tensor::sf::{SfBatch, SufficientFactor};
use poseidon_tensor::Matrix;
use proptest::prelude::*;

/// A strategy over every message variant — the five data frames with
/// arbitrary header fields and an arbitrary opaque payload, plus the two
/// payload-free control frames of the reliability layer.
fn any_message() -> impl Strategy<Value = Message> {
    let payload = proptest::collection::vec(any::<u8>(), 0..512);
    (any::<u64>(), any::<u32>(), any::<u32>(), payload, 0u8..7).prop_map(
        |(iter, layer, chunk, data, variant)| {
            let data = Bytes::from(data);
            match variant {
                0 => Message::GradChunk {
                    iter,
                    layer,
                    chunk,
                    data,
                },
                1 => Message::ParamChunk {
                    iter,
                    layer,
                    chunk,
                    data,
                },
                2 => Message::SfPush { iter, layer, data },
                3 => Message::ParamMatrix { iter, layer, data },
                4 => Message::Ack { upto: iter },
                5 => Message::Collective {
                    iter,
                    layer,
                    route: chunk,
                    data,
                },
                _ => Message::Nack { expect: iter },
            }
        },
    )
}

/// `(iter-field operand, layer, chunk, payload length)` of the frame header
/// the message encodes to. Control frames carry their operand in the iter
/// field and no payload.
fn header_fields(msg: &Message) -> (u64, u32, Option<u32>, usize) {
    match msg {
        Message::GradChunk {
            iter,
            layer,
            chunk,
            data,
        }
        | Message::ParamChunk {
            iter,
            layer,
            chunk,
            data,
        } => (*iter, *layer, Some(*chunk), data.len()),
        Message::Collective {
            iter,
            layer,
            route,
            data,
        } => (*iter, *layer, Some(*route), data.len()),
        Message::SfPush { iter, layer, data } | Message::ParamMatrix { iter, layer, data } => {
            (*iter, *layer, None, data.len())
        }
        Message::Ack { upto } => (*upto, 0, None, 0),
        Message::Nack { expect } => (*expect, 0, None, 0),
    }
}

proptest! {
    #[test]
    fn every_variant_roundtrips_bit_exactly(msg in any_message()) {
        let frame = encode_frame(&msg);
        let (iter, _, _, payload_len) = header_fields(&msg);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len);
        prop_assert_eq!(msg.wire_bytes(), frame.len() as u64);

        let (decoded, consumed) = decode_frame(&frame).expect("own frame must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.iter(), iter);
        // Same variant, same fields, same payload <=> identical re-encoding.
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    #[test]
    fn any_strict_prefix_is_incomplete(msg in any_message(), cut_frac in 0.0f64..1.0) {
        let frame = encode_frame(&msg);
        let cut = ((frame.len() as f64) * cut_frac) as usize; // < len
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Incomplete { needed }) => {
                prop_assert!(needed > cut, "needed {} <= cut {}", needed, cut);
                prop_assert!(needed <= frame.len());
            }
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
        }
        // And trailing garbage does not confuse the decode of frame one.
        let mut padded = frame.to_vec();
        padded.extend_from_slice(&[0xAA; 7]);
        let (_, consumed) = decode_frame(&padded).expect("padded frame");
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn corrupt_magic_version_tag_are_rejected(
        msg in any_message(),
        bad_magic in any::<[u8; 2]>(),
        bad_version in any::<u8>(),
        bad_tag in 7u8..,
    ) {
        let frame = encode_frame(&msg).to_vec();

        if bad_magic != FRAME_MAGIC {
            let mut f = frame.clone();
            f[0] = bad_magic[0];
            f[1] = bad_magic[1];
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadMagic(bad_magic))
            );
        }
        if bad_version != FRAME_VERSION {
            let mut f = frame.clone();
            f[2] = bad_version;
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadVersion(bad_version))
            );
        }
        let mut f = frame;
        f[3] = bad_tag;
        prop_assert_eq!(decode_frame(&f).err(), Some(FrameError::BadTag(bad_tag)));
    }

    /// A realistic SFB payload survives the full path: factor batch ->
    /// payload codec -> frame -> decode -> payload codec.
    #[test]
    fn sf_push_payload_roundtrips_through_the_frame(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..6,
        seed in any::<u32>(),
    ) {
        let mut batch = SfBatch::new();
        for s in 0..k {
            let val = |i: usize| (seed.wrapping_add((s * 31 + i) as u32) % 1000) as f32 / 97.0 - 5.0;
            batch.push(SufficientFactor::new(
                (0..m).map(val).collect(),
                (0..n).map(|i| val(i + m)).collect(),
            ));
        }
        let msg = Message::SfPush {
            iter: 3,
            layer: 1,
            data: bytesio::encode_sf_batch(&batch),
        };
        let frame = encode_frame(&msg);
        prop_assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + bytesio::sf_batch_wire_bytes(k, m, n)
        );
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::SfPush { data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        let back = bytesio::decode_sf_batch(&data).expect("sf payload");
        prop_assert_eq!(back.len(), k);
        for (a, b) in back.factors().iter().zip(batch.factors()) {
            prop_assert_eq!(&a.u, &b.u);
            prop_assert_eq!(&a.v, &b.v);
        }
    }

    /// The 1-bit bundle (quantized weights + dense bias) survives the full
    /// path, including its internal error-feedback state being irrelevant to
    /// the wire representation.
    #[test]
    fn onebit_payload_roundtrips_through_the_frame(
        m in 1usize..10,
        n in 1usize..10,
        seed in any::<u32>(),
    ) {
        let vals: Vec<f32> = (0..m * n)
            .map(|i| (seed.wrapping_add(i as u32) % 2001) as f32 / 100.0 - 10.0)
            .collect();
        let grad = Matrix::from_vec(m, n, vals);
        let quant = OneBitQuantizer::new(m, n).quantize(&grad);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 - 1.5).collect();
        let msg = Message::GradChunk {
            iter: 9,
            layer: 4,
            chunk: LAYER_GRANULAR_CHUNK,
            data: encode_onebit(&quant, &bias),
        };
        let frame = encode_frame(&msg);
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::GradChunk { chunk, data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        prop_assert_eq!(chunk, LAYER_GRANULAR_CHUNK);
        let (q2, b2) = poseidon::wire::decode_onebit(&data).expect("1-bit payload");
        prop_assert_eq!(q2, quant);
        prop_assert_eq!(b2, bias);
    }
}
