//! Property tests for the wire layer: every frame variant round-trips
//! bit-exactly through the codec (including the v3 codec tag in the layer
//! word), truncation is always reported as `Incomplete` (never a panic or a
//! garbage message), corrupt headers are rejected with the precise error, and
//! every payload codec in the registry survives its own round-trip while
//! rejecting truncated payloads.

use bytes::Bytes;
use poseidon::transport::Message;
use poseidon::wire::{
    decode_codec, decode_frame, encode_frame, Codec, FrameError, FRAME_HEADER_BYTES, FRAME_MAGIC,
    FRAME_VERSION, MAX_LAYER_INDEX,
};
use poseidon_tensor::bytesio;
use poseidon_tensor::compress::make_compressor;
use poseidon_tensor::sf::{SfBatch, SufficientFactor};
use proptest::prelude::*;

/// A strategy over every codec the registry knows. The wire carries only the
/// discriminant, so `TopK` uses the default density (what `from_wire_id`
/// reconstructs) to keep frame round-trips bit-exact.
fn any_wire_codec() -> impl Strategy<Value = Codec> {
    (0u8..5).prop_map(|id| Codec::from_wire_id(id).expect("ids 0..5 are all registered"))
}

/// A strategy over every message variant — the five data frames with
/// arbitrary header fields and an arbitrary opaque payload, plus the two
/// payload-free control frames of the reliability layer. Gradient-bearing
/// variants additionally carry an arbitrary codec tag.
fn any_message() -> impl Strategy<Value = Message> {
    let payload = proptest::collection::vec(any::<u8>(), 0..512);
    (
        any::<u64>(),
        0u32..=MAX_LAYER_INDEX,
        any::<u32>(),
        payload,
        any_wire_codec(),
        0u8..7,
    )
        .prop_map(|(iter, layer, chunk, data, codec, variant)| {
            let data = Bytes::from(data);
            match variant {
                0 => Message::GradChunk {
                    iter,
                    layer,
                    chunk,
                    codec,
                    data,
                },
                1 => Message::ParamChunk {
                    iter,
                    layer,
                    chunk,
                    codec,
                    data,
                },
                2 => Message::SfPush { iter, layer, data },
                3 => Message::ParamMatrix { iter, layer, data },
                4 => Message::Ack { upto: iter },
                5 => Message::Collective {
                    iter,
                    layer,
                    route: chunk,
                    codec,
                    data,
                },
                _ => Message::Nack { expect: iter },
            }
        })
}

/// `(iter-field operand, layer, chunk, payload length)` of the frame header
/// the message encodes to. Control frames carry their operand in the iter
/// field and no payload.
fn header_fields(msg: &Message) -> (u64, u32, Option<u32>, usize) {
    match msg {
        Message::GradChunk {
            iter,
            layer,
            chunk,
            data,
            ..
        }
        | Message::ParamChunk {
            iter,
            layer,
            chunk,
            data,
            ..
        } => (*iter, *layer, Some(*chunk), data.len()),
        Message::Collective {
            iter,
            layer,
            route,
            data,
            ..
        } => (*iter, *layer, Some(*route), data.len()),
        Message::SfPush { iter, layer, data } | Message::ParamMatrix { iter, layer, data } => {
            (*iter, *layer, None, data.len())
        }
        Message::Ack { upto } => (*upto, 0, None, 0),
        Message::Nack { expect } => (*expect, 0, None, 0),
    }
}

/// The codec tag a message stamps into its frame, if its variant carries one.
fn codec_of(msg: &Message) -> Option<Codec> {
    match msg {
        Message::GradChunk { codec, .. }
        | Message::ParamChunk { codec, .. }
        | Message::Collective { codec, .. } => Some(*codec),
        _ => None,
    }
}

proptest! {
    #[test]
    fn every_variant_roundtrips_bit_exactly(msg in any_message()) {
        let frame = encode_frame(&msg);
        let (iter, _, _, payload_len) = header_fields(&msg);
        prop_assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload_len);
        prop_assert_eq!(msg.wire_bytes(), frame.len() as u64);

        let (decoded, consumed) = decode_frame(&frame).expect("own frame must decode");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.iter(), iter);
        prop_assert_eq!(codec_of(&decoded), codec_of(&msg), "codec tag lost in flight");
        // Same variant, same fields, same payload <=> identical re-encoding.
        prop_assert_eq!(encode_frame(&decoded), frame);
    }

    #[test]
    fn any_strict_prefix_is_incomplete(msg in any_message(), cut_frac in 0.0f64..1.0) {
        let frame = encode_frame(&msg);
        let cut = ((frame.len() as f64) * cut_frac) as usize; // < len
        match decode_frame(&frame[..cut]) {
            Err(FrameError::Incomplete { needed }) => {
                prop_assert!(needed > cut, "needed {} <= cut {}", needed, cut);
                prop_assert!(needed <= frame.len());
            }
            other => prop_assert!(false, "prefix of {} bytes gave {:?}", cut, other),
        }
        // And trailing garbage does not confuse the decode of frame one.
        let mut padded = frame.to_vec();
        padded.extend_from_slice(&[0xAA; 7]);
        let (_, consumed) = decode_frame(&padded).expect("padded frame");
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn corrupt_magic_version_tag_codec_are_rejected(
        msg in any_message(),
        bad_magic in any::<[u8; 2]>(),
        bad_version in any::<u8>(),
        bad_tag in 8u8..,
        bad_codec in 5u8..,
    ) {
        let frame = encode_frame(&msg).to_vec();

        if bad_magic != FRAME_MAGIC {
            let mut f = frame.clone();
            f[0] = bad_magic[0];
            f[1] = bad_magic[1];
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadMagic(bad_magic))
            );
        }
        if bad_version != FRAME_VERSION {
            let mut f = frame.clone();
            f[2] = bad_version;
            prop_assert_eq!(
                decode_frame(&f).err(),
                Some(FrameError::BadVersion(bad_version))
            );
        }
        {
            // Byte 15 is the top byte of the little-endian layer word — the
            // codec id. An unregistered id must surface as BadCodec, for
            // every variant (even those that always stamp identity).
            let mut f = frame.clone();
            f[15] = bad_codec;
            prop_assert_eq!(decode_frame(&f).err(), Some(FrameError::BadCodec(bad_codec)));
        }
        let mut f = frame;
        f[3] = bad_tag;
        prop_assert_eq!(decode_frame(&f).err(), Some(FrameError::BadTag(bad_tag)));
    }

    /// A realistic SFB payload survives the full path: factor batch ->
    /// payload codec -> frame -> decode -> payload codec.
    #[test]
    fn sf_push_payload_roundtrips_through_the_frame(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..6,
        seed in any::<u32>(),
    ) {
        let mut batch = SfBatch::new();
        for s in 0..k {
            let val = |i: usize| (seed.wrapping_add((s * 31 + i) as u32) % 1000) as f32 / 97.0 - 5.0;
            batch.push(SufficientFactor::new(
                (0..m).map(val).collect(),
                (0..n).map(|i| val(i + m)).collect(),
            ));
        }
        let msg = Message::SfPush {
            iter: 3,
            layer: 1,
            data: bytesio::encode_sf_batch(&batch),
        };
        let frame = encode_frame(&msg);
        prop_assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + bytesio::sf_batch_wire_bytes(k, m, n)
        );
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::SfPush { data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        let back = bytesio::decode_sf_batch(&data).expect("sf payload");
        prop_assert_eq!(back.len(), k);
        for (a, b) in back.factors().iter().zip(batch.factors()) {
            prop_assert_eq!(&a.u, &b.u);
            prop_assert_eq!(&a.v, &b.v);
        }
    }

    /// Every registry codec's payload survives framing bit-exactly: the bytes
    /// a compressor emits come out of the frame unchanged and decode to the
    /// same values whether or not they crossed the wire.
    #[test]
    fn codec_payloads_roundtrip_through_the_frame(
        codec in any_wire_codec(),
        vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
        layer in 0u32..=MAX_LAYER_INDEX,
    ) {
        let mut comp = make_compressor(codec, vals.len());
        let payload = comp.compress(&vals);
        prop_assert_eq!(payload.len(), codec.payload_bytes(vals.len()));
        let direct = decode_codec(codec, &payload, vals.len()).expect("own payload decodes");

        let msg = Message::GradChunk {
            iter: 2,
            layer,
            chunk: 0,
            codec,
            data: payload,
        };
        let frame = encode_frame(&msg);
        let (decoded, _) = decode_frame(&frame).expect("frame");
        let Message::GradChunk { codec: tag, data, .. } = decoded else {
            panic!("variant changed in flight");
        };
        prop_assert_eq!(tag.wire_id(), codec.wire_id());
        let via_wire = decode_codec(tag, &data, vals.len()).expect("framed payload decodes");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&via_wire), bits(&direct));
        if codec.is_lossless() {
            prop_assert_eq!(bits(&via_wire), bits(&vals));
        }
    }

    /// Chopping bytes off the end of any codec's payload is always surfaced
    /// as a `CodecError` — never a panic, never a silently-short decode.
    #[test]
    fn truncated_codec_payloads_are_rejected(
        codec in any_wire_codec(),
        vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut comp = make_compressor(codec, vals.len());
        let payload = comp.compress(&vals);
        // Never empty: vals has >= 1 element, every codec emits framing bytes.
        let cut = ((payload.len() as f64) * cut_frac) as usize; // < len
        prop_assert!(
            decode_codec(codec, &payload[..cut], vals.len()).is_err(),
            "{} accepted a {}-of-{}-byte prefix",
            codec,
            cut,
            payload.len()
        );
    }

    /// Residual-carrying codecs are bitwise deterministic: two independent
    /// compressor instances fed the same sequence of tensors emit identical
    /// bytes at every step, so replicas and reruns stay reproducible.
    #[test]
    fn residual_state_is_deterministic_across_instances(
        codec in any_wire_codec(),
        rounds in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 32),
            1..6
        ),
    ) {
        let mut a = make_compressor(codec, 32);
        let mut b = make_compressor(codec, 32);
        for (i, vals) in rounds.iter().enumerate() {
            let pa = a.compress(vals);
            let pb = b.compress(vals);
            prop_assert_eq!(&pa[..], &pb[..], "{} diverged at round {}", codec, i);
        }
    }
}
