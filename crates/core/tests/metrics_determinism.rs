//! Pins the metrics-plane contract: the always-on metrics path is a *pure
//! observer*. The same training configuration run with metrics on and with
//! metrics off produces bitwise-identical replicas, identical losses, and
//! identical counted traffic on every communication scheme — counters and
//! histograms may never perturb numerics, message order determinism, or the
//! bytes on the wire.
//!
//! The enable flag is process-global, so all comparisons live in ONE
//! `#[test]` in their own integration-test binary — `cargo test`'s
//! in-binary thread pool cannot interleave a second flip of the gate.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::metrics;
use poseidon::runtime::{flatten_model_params, train, RuntimeConfig, TrainResult};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::time::Duration;

const WORKERS: usize = 3;
const ITERS: usize = 4;
const BATCH: usize = 8;
const LR: f32 = 0.2;
const SEED: u64 = 17;
const LAYERS: [usize; 4] = [12, 16, 8, 4];

fn run(policy: SchemePolicy) -> TrainResult<Network> {
    let data = Dataset::gaussian_clusters(
        TensorShape::flat(LAYERS[0]),
        *LAYERS.last().unwrap(),
        96,
        0.3,
        SEED + 1,
    );
    let cfg = RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    };
    train(&|| presets::mlp(&LAYERS, SEED), &data, None, &cfg)
}

#[test]
fn metrics_are_a_pure_observer_on_every_scheme() {
    assert!(
        metrics::is_enabled(),
        "metrics must be on by default — they are the live-introspection plane"
    );
    for policy in [
        SchemePolicy::AlwaysPs,
        SchemePolicy::Hybrid,
        SchemePolicy::AlwaysRing,
        SchemePolicy::AlwaysTree,
    ] {
        metrics::set_enabled(true);
        let on = run(policy);
        metrics::set_enabled(false);
        let off = run(policy);
        metrics::set_enabled(true);

        assert_eq!(
            flatten_model_params(&on.net),
            flatten_model_params(&off.net),
            "{policy:?}: metrics flipped the trained replica — record path is not a pure observer"
        );
        assert_eq!(
            on.losses, off.losses,
            "{policy:?}: metrics changed the loss trajectory"
        );
        assert_eq!(
            on.traffic.snapshot(),
            off.traffic.snapshot(),
            "{policy:?}: metrics changed counted wire traffic"
        );
        // The health verdict rides on an ungated private histogram, so it
        // is present either way. (No straggler assertion here: busy times
        // of this tiny model are sub-millisecond, where CPU contention
        // from the parallel test harness adds real skew.)
        assert_eq!(on.health.verdicts.len(), WORKERS);
        assert_eq!(off.health.verdicts.len(), WORKERS);
    }

    // The metered runs above actually landed in the global registry: the
    // per-worker step histograms exist and counted every iteration of the
    // four metered runs.
    let snap = metrics::snapshot();
    let steps = snap
        .histogram("poseidon_step_time_ns", &[("worker", "0")])
        .expect("worker 0 step-time histogram");
    assert!(
        steps.count >= 4 * ITERS as u64,
        "expected at least {} metered steps, saw {}",
        4 * ITERS,
        steps.count
    );
}
