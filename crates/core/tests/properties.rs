//! Property-based tests for Poseidon's core data structures and cost model.

use poseidon::chunk::ChunkTable;
use poseidon::config::{ClusterConfig, CommScheme, Partition};
use poseidon::costmodel;
use poseidon::kvstore::ShardState;
use proptest::prelude::*;

proptest! {
    /// KV-pair chunking is a partition: chunks cover every layer exactly,
    /// contiguously, with no overlap, and every chunk respects the pair size.
    #[test]
    fn chunk_table_partitions_layers(
        layers in proptest::collection::vec(0usize..10_000, 1..12),
        servers in 1usize..9,
        pair in 1usize..2048,
    ) {
        let table = ChunkTable::build(&layers, servers, Partition::KvPairs { pair_elems: pair });
        for (l, &elems) in layers.iter().enumerate() {
            let chunks = table.layer_chunks(l);
            let total: usize = chunks.iter().map(|c| c.len).sum();
            prop_assert_eq!(total, elems, "layer {} not fully covered", l);
            let mut expected_offset = 0usize;
            for c in &chunks {
                prop_assert_eq!(c.offset, expected_offset, "gap or overlap in layer {}", l);
                prop_assert!(c.len <= pair);
                prop_assert!(c.shard < servers);
                expected_offset += c.len;
            }
        }
    }

    /// Round-robin assignment keeps shard loads within one pair of each other
    /// for a single large layer.
    #[test]
    fn chunk_table_balances_single_layer(
        elems in 1usize..1_000_000,
        servers in 1usize..17,
        pair in 1usize..65_536,
    ) {
        let table = ChunkTable::build(&[elems], servers, Partition::KvPairs { pair_elems: pair });
        let loads = table.shard_loads();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        prop_assert!(max - min <= pair, "max {max} min {min} pair {pair}");
    }

    /// BSP shard aggregation equals a plain fold: after all workers report,
    /// params == init + scale * Σ grads, for any arrival order.
    #[test]
    fn shard_aggregation_is_scaled_sum(
        init in proptest::collection::vec(-10.0f32..10.0, 1..32),
        grads in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 1..32), 1..5),
        scale in -1.0f32..1.0,
        order_seed in 0u64..1000,
    ) {
        let workers = grads.len();
        let len = init.len();
        let grads: Vec<Vec<f32>> = grads
            .into_iter()
            .map(|mut g| {
                g.resize(len, 0.0);
                g
            })
            .collect();
        // Shuffle arrival order deterministically.
        let mut order: Vec<usize> = (0..workers).collect();
        let mut seed = order_seed;
        for i in (1..order.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (seed >> 33) as usize % (i + 1));
        }

        let mut shard = ShardState::new(workers, scale);
        shard.init_pair((0, 0), init.clone());
        let mut result = None;
        for &w in &order {
            result = shard.receive_grad(w, (0, 0), &grads[w]);
        }
        let updated = result.expect("all workers reported");

        for i in 0..len {
            let sum: f32 = grads.iter().map(|g| g[i]).sum();
            let expect = init[i] + scale * sum;
            prop_assert!((updated[i] - expect).abs() <= 1e-4 * (1.0 + expect.abs()));
        }
    }

    /// Checkpoint/restore is lossless for arbitrary shard contents.
    #[test]
    fn shard_checkpoint_roundtrips(
        pairs in proptest::collection::vec(
            ((0u32..50, 0u32..50), proptest::collection::vec(-100.0f32..100.0, 1..20)),
            1..10),
    ) {
        let mut shard = ShardState::new(1, -1.0);
        for (key, values) in &pairs {
            shard.init_pair(*key, values.clone());
        }
        let expected_pairs = shard.num_pairs();
        let ckpt = shard.checkpoint();
        let mut restored = ShardState::new(1, -1.0);
        prop_assert_eq!(restored.restore(&ckpt), Some(expected_pairs));
        for (key, _) in &pairs {
            prop_assert_eq!(restored.pair(*key), shard.pair(*key));
        }
    }

    /// Algorithm 1 picks the argmin of the two analytic costs — always.
    #[test]
    fn best_scheme_is_argmin(
        m in 1usize..30_000,
        n in 1usize..30_000,
        k in 1usize..512,
        p in 2usize..64,
    ) {
        let cluster = ClusterConfig::colocated(p, k);
        let sfb = costmodel::sfb_cost(m, n, &cluster);
        let ps = costmodel::ps_cost(m, n, &cluster).server_and_worker;
        let picked = costmodel::best_scheme_fc(m, n, &cluster);
        if sfb <= ps {
            prop_assert_eq!(picked, CommScheme::Sfb);
        } else {
            prop_assert_eq!(picked, CommScheme::Ps);
        }
    }

    /// The crossover batch size is consistent with BestScheme on both sides.
    #[test]
    fn crossover_batch_is_a_true_boundary(
        m in 16usize..10_000,
        n in 16usize..10_000,
        p in 2usize..33,
    ) {
        let crossover = costmodel::sfb_crossover_batch(m, n, p, p);
        let below = crossover.floor() as usize;
        if below >= 1 {
            let cluster = ClusterConfig { workers: p, servers: p, batch_per_worker: below, colocated: true };
            prop_assert_eq!(costmodel::best_scheme_fc(m, n, &cluster), CommScheme::Sfb);
        }
        let above = crossover.ceil() as usize + 1;
        let cluster = ClusterConfig { workers: p, servers: p, batch_per_worker: above, colocated: true };
        prop_assert_eq!(costmodel::best_scheme_fc(m, n, &cluster), CommScheme::Ps);
    }

    /// PS cost is monotone in the matrix size, SFB cost in the batch size.
    #[test]
    fn cost_model_monotonicity(
        m in 1usize..5000,
        n in 1usize..5000,
        k in 1usize..256,
        p in 2usize..32,
    ) {
        let cluster = ClusterConfig::colocated(p, k);
        let bigger = ClusterConfig::colocated(p, k + 1);
        prop_assert!(
            costmodel::sfb_cost(m, n, &bigger) >= costmodel::sfb_cost(m, n, &cluster)
        );
        prop_assert!(
            costmodel::ps_cost(m + 1, n, &cluster).server_and_worker
                >= costmodel::ps_cost(m, n, &cluster).server_and_worker
        );
        // PS cost is independent of K.
        prop_assert_eq!(
            costmodel::ps_cost(m, n, &bigger).server_and_worker,
            costmodel::ps_cost(m, n, &cluster).server_and_worker
        );
    }
}

proptest! {
    /// Topology-aware monotonicity: widening the inter-node links (or the
    /// uplinks feeding an oversubscribed core) never increases any scheme's
    /// predicted step time.
    #[test]
    fn more_inter_bandwidth_never_slows_any_scheme(
        nodes in 1usize..6,
        devices in 1usize..5,
        intra_gbps in 1u32..200,
        inter_gbps in 1u32..100,
        oversub in 1u32..8,
        elems in 0usize..(1 << 24),
        k in 1usize..128,
        boost in 1u32..10,
    ) {
        let link = |gbps: f64, lat: f64| poseidon_netsim::LinkConfig {
            bandwidth_gbps: gbps,
            latency_s: lat,
        };
        let topo = poseidon::config::Topology::two_level(
            nodes,
            devices,
            link(intra_gbps as f64, 1e-6),
            link(inter_gbps as f64, 40e-6),
            oversub as f64,
        );
        let mut faster = topo;
        faster.inter.bandwidth_gbps *= boost as f64;
        let cluster = ClusterConfig::colocated(topo.total_devices().max(1), k);
        let fc = Some((512usize, 512usize));
        let slow = costmodel::scheme_times_topo(elems, fc, &cluster, &topo);
        let fast = costmodel::scheme_times_topo(elems, fc, &cluster, &faster);
        prop_assert!(fast.ps <= slow.ps, "PS: {} > {}", fast.ps, slow.ps);
        prop_assert!(fast.sfb.unwrap() <= slow.sfb.unwrap());
        prop_assert!(fast.ring <= slow.ring, "ring: {} > {}", fast.ring, slow.ring);
        prop_assert!(fast.tree <= slow.tree, "tree: {} > {}", fast.tree, slow.tree);
    }

    /// The chosen scheme is always a cheapest one, and ties resolve by the
    /// fixed preference order PS > SFB > ring > tree — so byte-count ties
    /// can never flip the choice between runs or between equal-size layers.
    #[test]
    fn best_scheme_topo_is_a_stable_minimum(
        nodes in 1usize..6,
        devices in 1usize..5,
        intra_gbps in 1u32..200,
        inter_gbps in 1u32..100,
        oversub in 1u32..8,
        elems in 0usize..(1 << 24),
        k in 1usize..128,
        has_fc in 0u32..2,
    ) {
        let link = |gbps: f64, lat: f64| poseidon_netsim::LinkConfig {
            bandwidth_gbps: gbps,
            latency_s: lat,
        };
        let topo = poseidon::config::Topology::two_level(
            nodes,
            devices,
            link(intra_gbps as f64, 1e-6),
            link(inter_gbps as f64, 40e-6),
            oversub as f64,
        );
        let p = topo.total_devices();
        let cluster = ClusterConfig::colocated(p.max(1), k);
        let fc = (has_fc == 1).then_some((1024usize, 256usize));
        let best = costmodel::best_scheme_topo(elems, fc, &cluster, &topo);
        // Deterministic: a second evaluation agrees (stability under reruns
        // and under equal-size sibling layers).
        prop_assert_eq!(best, costmodel::best_scheme_topo(elems, fc, &cluster, &topo));
        if p <= 1 {
            prop_assert_eq!(best, CommScheme::Ps);
        } else {
            let t = costmodel::scheme_times_topo(elems, fc, &cluster, &topo);
            // Preference order, cheapest-first semantics.
            let mut ranked = vec![(CommScheme::Ps, t.ps)];
            if let Some(sfb) = t.sfb {
                ranked.push((CommScheme::Sfb, sfb));
            }
            ranked.push((CommScheme::Ring, t.ring));
            ranked.push((CommScheme::Tree, t.tree));
            let best_time = ranked
                .iter()
                .find(|(s, _)| *s == best)
                .expect("chosen scheme is priced")
                .1;
            for &(scheme, time) in &ranked {
                prop_assert!(
                    best_time <= time,
                    "{:?}@{} beats chosen {:?}@{}",
                    scheme, time, best, best_time
                );
                if scheme == best {
                    break;
                }
                // Everything preferred over the winner must be strictly
                // slower, else the tie-break would have kept it.
                prop_assert!(
                    time > best_time,
                    "tie with preferred {:?} must not pick {:?}",
                    scheme, best
                );
            }
        }
    }
}
