//! Property-based tests for Poseidon's core data structures and cost model.

use poseidon::chunk::ChunkTable;
use poseidon::config::{ClusterConfig, CommScheme, Partition};
use poseidon::costmodel;
use poseidon::kvstore::ShardState;
use proptest::prelude::*;

proptest! {
    /// KV-pair chunking is a partition: chunks cover every layer exactly,
    /// contiguously, with no overlap, and every chunk respects the pair size.
    #[test]
    fn chunk_table_partitions_layers(
        layers in proptest::collection::vec(0usize..10_000, 1..12),
        servers in 1usize..9,
        pair in 1usize..2048,
    ) {
        let table = ChunkTable::build(&layers, servers, Partition::KvPairs { pair_elems: pair });
        for (l, &elems) in layers.iter().enumerate() {
            let chunks = table.layer_chunks(l);
            let total: usize = chunks.iter().map(|c| c.len).sum();
            prop_assert_eq!(total, elems, "layer {} not fully covered", l);
            let mut expected_offset = 0usize;
            for c in &chunks {
                prop_assert_eq!(c.offset, expected_offset, "gap or overlap in layer {}", l);
                prop_assert!(c.len <= pair);
                prop_assert!(c.shard < servers);
                expected_offset += c.len;
            }
        }
    }

    /// Round-robin assignment keeps shard loads within one pair of each other
    /// for a single large layer.
    #[test]
    fn chunk_table_balances_single_layer(
        elems in 1usize..1_000_000,
        servers in 1usize..17,
        pair in 1usize..65_536,
    ) {
        let table = ChunkTable::build(&[elems], servers, Partition::KvPairs { pair_elems: pair });
        let loads = table.shard_loads();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        prop_assert!(max - min <= pair, "max {max} min {min} pair {pair}");
    }

    /// BSP shard aggregation equals a plain fold: after all workers report,
    /// params == init + scale * Σ grads, for any arrival order.
    #[test]
    fn shard_aggregation_is_scaled_sum(
        init in proptest::collection::vec(-10.0f32..10.0, 1..32),
        grads in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 1..32), 1..5),
        scale in -1.0f32..1.0,
        order_seed in 0u64..1000,
    ) {
        let workers = grads.len();
        let len = init.len();
        let grads: Vec<Vec<f32>> = grads
            .into_iter()
            .map(|mut g| {
                g.resize(len, 0.0);
                g
            })
            .collect();
        // Shuffle arrival order deterministically.
        let mut order: Vec<usize> = (0..workers).collect();
        let mut seed = order_seed;
        for i in (1..order.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (seed >> 33) as usize % (i + 1));
        }

        let mut shard = ShardState::new(workers, scale);
        shard.init_pair((0, 0), init.clone());
        let mut result = None;
        for &w in &order {
            result = shard.receive_grad(w, (0, 0), &grads[w]);
        }
        let updated = result.expect("all workers reported");

        for i in 0..len {
            let sum: f32 = grads.iter().map(|g| g[i]).sum();
            let expect = init[i] + scale * sum;
            prop_assert!((updated[i] - expect).abs() <= 1e-4 * (1.0 + expect.abs()));
        }
    }

    /// Checkpoint/restore is lossless for arbitrary shard contents.
    #[test]
    fn shard_checkpoint_roundtrips(
        pairs in proptest::collection::vec(
            ((0u32..50, 0u32..50), proptest::collection::vec(-100.0f32..100.0, 1..20)),
            1..10),
    ) {
        let mut shard = ShardState::new(1, -1.0);
        for (key, values) in &pairs {
            shard.init_pair(*key, values.clone());
        }
        let expected_pairs = shard.num_pairs();
        let ckpt = shard.checkpoint();
        let mut restored = ShardState::new(1, -1.0);
        prop_assert_eq!(restored.restore(&ckpt), Some(expected_pairs));
        for (key, _) in &pairs {
            prop_assert_eq!(restored.pair(*key), shard.pair(*key));
        }
    }

    /// Algorithm 1 picks the argmin of the two analytic costs — always.
    #[test]
    fn best_scheme_is_argmin(
        m in 1usize..30_000,
        n in 1usize..30_000,
        k in 1usize..512,
        p in 2usize..64,
    ) {
        let cluster = ClusterConfig::colocated(p, k);
        let sfb = costmodel::sfb_cost(m, n, &cluster);
        let ps = costmodel::ps_cost(m, n, &cluster).server_and_worker;
        let picked = costmodel::best_scheme_fc(m, n, &cluster);
        if sfb <= ps {
            prop_assert_eq!(picked, CommScheme::Sfb);
        } else {
            prop_assert_eq!(picked, CommScheme::Ps);
        }
    }

    /// The crossover batch size is consistent with BestScheme on both sides.
    #[test]
    fn crossover_batch_is_a_true_boundary(
        m in 16usize..10_000,
        n in 16usize..10_000,
        p in 2usize..33,
    ) {
        let crossover = costmodel::sfb_crossover_batch(m, n, p, p);
        let below = crossover.floor() as usize;
        if below >= 1 {
            let cluster = ClusterConfig { workers: p, servers: p, batch_per_worker: below, colocated: true };
            prop_assert_eq!(costmodel::best_scheme_fc(m, n, &cluster), CommScheme::Sfb);
        }
        let above = crossover.ceil() as usize + 1;
        let cluster = ClusterConfig { workers: p, servers: p, batch_per_worker: above, colocated: true };
        prop_assert_eq!(costmodel::best_scheme_fc(m, n, &cluster), CommScheme::Ps);
    }

    /// PS cost is monotone in the matrix size, SFB cost in the batch size.
    #[test]
    fn cost_model_monotonicity(
        m in 1usize..5000,
        n in 1usize..5000,
        k in 1usize..256,
        p in 2usize..32,
    ) {
        let cluster = ClusterConfig::colocated(p, k);
        let bigger = ClusterConfig::colocated(p, k + 1);
        prop_assert!(
            costmodel::sfb_cost(m, n, &bigger) >= costmodel::sfb_cost(m, n, &cluster)
        );
        prop_assert!(
            costmodel::ps_cost(m + 1, n, &cluster).server_and_worker
                >= costmodel::ps_cost(m, n, &cluster).server_and_worker
        );
        // PS cost is independent of K.
        prop_assert_eq!(
            costmodel::ps_cost(m, n, &bigger).server_and_worker,
            costmodel::ps_cost(m, n, &cluster).server_and_worker
        );
    }
}
