//! Property tests for the fault-injection plane.
//!
//! Two invariants make chaos testing trustworthy:
//!
//! 1. **Determinism** — a seeded fault plan driven by a deterministic
//!    message script fires the identical fault-event sequence and leaves
//!    the identical traffic ledger on every run. Faults are scripted on
//!    logical frame counters, never wall-clock, so this holds exactly.
//! 2. **Transparency** — a [`FaultyTransport`] carrying the empty plan is
//!    byte-for-byte invisible: same envelopes (payload, seq, src, origin),
//!    same counted bytes, on both the channel and the socket transport.
//!
//! The scripts here run the whole fabric from one thread (sends first,
//! then deterministic round-robin pumping) and disable reliability probes
//! (`probe_interval` = 10 s), so recovery actions are a pure function of
//! the plan — no timing enters the ledger.

use bytes::Bytes;
use poseidon::faults::{FaultPlan, FaultyTransport, FiredFault};
use poseidon::transport::{
    bind_ephemeral, fabric_with_nodes, Message, ReliabilityConfig, ReliableTransport,
    TcpFabricSpec, TcpTransport, TrafficCounters, Transport,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Frames sent on every ordered endpoint pair by the deterministic script —
/// comfortably past the largest frame index a seeded plan can target, so
/// every scripted delay releases and every drop is followed by a later
/// frame whose arrival nacks the gap (no probes needed).
const FRAMES_PER_LINK: u64 = 10;

fn grad(iter: u64, tag: u8) -> Message {
    Message::GradChunk {
        iter,
        layer: 0,
        chunk: 0,
        codec: poseidon::wire::Codec::Identity,
        data: Bytes::from(vec![tag; 5]),
    }
}

/// One full deterministic run: a 4-endpoint fabric with nodes alternating
/// (endpoint i on node i % 2, so every even↔odd pair is cross-node —
/// matching `FaultPlan::seeded`'s link selection), every ordered pair
/// exchanging [`FRAMES_PER_LINK`] frames through `Reliable(Faulty(channel))`
/// with the seeded plan, pumped round-robin from this thread until every
/// endpoint holds its full expected set. Returns (per-endpoint delivery
/// logs, fired faults, traffic snapshot).
type DeliveryLogs = Vec<Vec<(usize, u32, u64)>>;

fn scripted_run(seed: u64) -> (DeliveryLogs, Vec<FiredFault>, Vec<u64>) {
    let node_ids = [0usize, 1, 0, 1];
    let n = node_ids.len();
    let (eps, counters) = fabric_with_nodes(&node_ids);
    let plan = FaultPlan::seeded(seed, n);
    let cfg = ReliabilityConfig {
        probe_interval: Duration::from_secs(10), // never fires in this test
        ..ReliabilityConfig::default()
    };
    let mut logs = Vec::with_capacity(n);
    let mut stack: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let faulty = FaultyTransport::new(ep, &plan);
            logs.push(faulty.log());
            ReliableTransport::new(faulty, cfg.clone())
        })
        .collect();

    // Send phase: every ordered pair, lowest sender first, frames in order.
    for (from, ep) in stack.iter().enumerate() {
        for to in 0..n {
            if from == to {
                continue;
            }
            for i in 0..FRAMES_PER_LINK {
                ep.send(to, grad(i, (from * n + to) as u8)).expect("send");
            }
        }
    }

    // Pump phase: round-robin try_recv until every endpoint holds its full
    // expected set. Each pump also processes incoming acks and nacks (and a
    // nack triggers the retransmit inline), so repairs propagate within a
    // round or two; a "quiet round" test would race a retransmit still in
    // flight, so the loop targets the delivery count instead. The round cap
    // turns a lost repair into a loud failure rather than a hang.
    let expected = (n - 1) as u64 * FRAMES_PER_LINK;
    let mut delivered: Vec<Vec<(usize, u32, u64)>> = (0..n).map(|_| Vec::new()).collect();
    for round in 0.. {
        assert!(round < 200, "pump did not converge: {delivered:?}");
        for (me, ep) in stack.iter().enumerate() {
            while let Some(env) = ep.try_recv().expect("pump") {
                delivered[me].push((env.src, env.seq, env.msg.iter()));
            }
        }
        if delivered.iter().all(|d| d.len() as u64 >= expected) {
            break;
        }
    }
    for ep in &mut stack {
        ep.shutdown().expect("shutdown");
    }

    let fired: Vec<FiredFault> = logs
        .iter()
        .flat_map(|l| l.lock().expect("log").clone())
        .collect();
    let snap = counters.snapshot();
    let mut ledger = snap.tx.clone();
    ledger.extend_from_slice(&snap.rx);
    (delivered, fired, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed, same script → identical deliveries, identical fired-fault
    /// sequence, identical traffic ledger. The chaos plane is a pure
    /// function of (plan, message script).
    #[test]
    fn seeded_chaos_runs_are_reproducible(seed in any::<u64>()) {
        let (del_a, fired_a, ledger_a) = scripted_run(seed);
        let (del_b, fired_b, ledger_b) = scripted_run(seed);
        prop_assert_eq!(&fired_a, &fired_b, "fired-fault logs diverged");
        prop_assert_eq!(&del_a, &del_b, "delivery order diverged");
        prop_assert_eq!(&ledger_a, &ledger_b, "traffic ledgers diverged");

        // And the runs were complete: despite drops/dups/delays, every
        // endpoint received exactly the original frames, in order per link.
        for (me, log) in del_a.iter().enumerate() {
            let n = 4usize;
            prop_assert_eq!(
                log.len() as u64,
                (n as u64 - 1) * FRAMES_PER_LINK,
                "endpoint {} lost or duplicated deliveries",
                me
            );
            for src in (0..n).filter(|&s| s != me) {
                let iters: Vec<u64> = log
                    .iter()
                    .filter(|(s, _, _)| *s == src)
                    .map(|(_, _, it)| *it)
                    .collect();
                let want: Vec<u64> = (0..FRAMES_PER_LINK).collect();
                prop_assert_eq!(&iters, &want, "link {}->{} misdelivered", src, me);
            }
        }
    }

    /// An empty-plan [`FaultyTransport`] over the channel fabric is
    /// byte-for-byte transparent: identical envelopes (origin node, source
    /// endpoint, sequence number, payload) and identical counted bytes.
    #[test]
    fn empty_plan_is_transparent_on_channels(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20),
        seqs in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let run = |wrap: bool| -> (Vec<(usize, usize, u32, Message)>, u64) {
            let (mut eps, counters) = fabric_with_nodes(&[0, 1]);
            let rx = eps.remove(1);
            let tx = eps.remove(0);
            let got = if wrap {
                let tx = FaultyTransport::new(tx, &FaultPlan::empty());
                drive(&tx, &rx, &payloads, &seqs);
                assert!(tx.log().lock().expect("log").is_empty());
                collect(&rx, payloads.len())
            } else {
                drive(&tx, &rx, &payloads, &seqs);
                collect(&rx, payloads.len())
            };
            (got, counters.total_bytes())
        };
        let (plain, plain_bytes) = run(false);
        let (wrapped, wrapped_bytes) = run(true);
        prop_assert_eq!(plain, wrapped, "envelopes must be identical");
        prop_assert_eq!(plain_bytes, wrapped_bytes, "counted bytes must be identical");
    }
}

/// Sends every payload from `tx` to endpoint 1 with its scripted seq.
fn drive<T: Transport>(tx: &T, _rx: &impl Transport, payloads: &[Vec<u8>], seqs: &[u32]) {
    for (i, p) in payloads.iter().enumerate() {
        let msg = Message::GradChunk {
            iter: i as u64,
            layer: 0,
            chunk: 0,
            codec: poseidon::wire::Codec::Identity,
            data: Bytes::from(p.clone()),
        };
        let seq = seqs[i % seqs.len()];
        tx.send_seq(1, msg, seq).expect("send");
    }
}

/// Drains exactly `n` envelopes from `rx`.
fn collect(rx: &impl Transport, n: usize) -> Vec<(usize, usize, u32, Message)> {
    (0..n)
        .map(|_| {
            let env = rx.recv().expect("recv");
            (env.from, env.src, env.seq, env.msg)
        })
        .collect()
}

/// The socket variant of transparency: the same frames through a bare
/// [`TcpTransport`] and through an empty-plan wrapper arrive identical and
/// count identical bytes. One exemplar message set (proptesting TCP would
/// churn real sockets per case).
#[test]
fn empty_plan_is_transparent_on_sockets() {
    let run = |wrap: bool| -> (Vec<(usize, usize, u32, u64)>, u64) {
        let (listeners, addrs) = bind_ephemeral(2).expect("bind");
        let spec = TcpFabricSpec {
            addrs,
            node_of_endpoint: vec![0, 1],
            connect_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(50),
            reconnect_timeout: Duration::from_secs(5),
        };
        let counters = Arc::new(TrafficCounters::new(2));
        let mut got = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(me, listener)| {
                    let spec = spec.clone();
                    let counters = Arc::clone(&counters);
                    s.spawn(move || {
                        let ep = TcpTransport::connect_with_listener(
                            &spec,
                            me,
                            listener,
                            Some(counters),
                        )
                        .expect("mesh");
                        if me == 0 {
                            let send_all = |t: &dyn Transport| {
                                for i in 0..6u64 {
                                    t.send_seq(1, grad(i, 9), i as u32 + 1).expect("send");
                                }
                            };
                            if wrap {
                                let mut f = FaultyTransport::new(ep, &FaultPlan::empty());
                                send_all(&f);
                                f.shutdown().expect("shutdown");
                            } else {
                                let mut ep = ep;
                                send_all(&ep);
                                ep.shutdown().expect("shutdown");
                            }
                            Vec::new()
                        } else {
                            let mut ep = ep;
                            let out: Vec<(usize, usize, u32, u64)> = (0..6)
                                .map(|_| {
                                    let env = ep.recv().expect("recv");
                                    (env.from, env.src, env.seq, env.msg.iter())
                                })
                                .collect();
                            ep.shutdown().expect("shutdown");
                            out
                        }
                    })
                })
                .collect();
            for h in handles {
                let mut out = h.join().expect("thread");
                got.append(&mut out);
            }
        });
        (got, counters.total_bytes())
    };
    let (plain, plain_bytes) = run(false);
    let (wrapped, wrapped_bytes) = run(true);
    assert_eq!(plain, wrapped, "socket envelopes must be identical");
    assert_eq!(plain_bytes, wrapped_bytes, "socket bytes must be identical");
    assert_eq!(plain.len(), 6);
    assert_eq!(plain[0], (0, 0, 1, 0), "origin, src, seq, iter survive TCP");
}
