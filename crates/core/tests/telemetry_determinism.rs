//! Pins telemetry's core contract: recording is an *observer*. The same
//! training configuration run with telemetry off, telemetry on, and
//! telemetry off again (with the nn probe hook now installed — the state a
//! long-lived process is in after one traced run) produces bitwise-identical
//! replicas and identical counted traffic, while the traced run yields a
//! well-formed event stream that round-trips through the Chrome exporter.
//!
//! Telemetry state is process-global, so the three runs live in ONE `#[test]`
//! in their own integration-test binary — `cargo test`'s in-binary thread
//! pool cannot interleave a second enable/drain.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::runtime::{flatten_model_params, train, RuntimeConfig, TrainResult};
use poseidon::telemetry::{chrome, EventKind, TelemetryConfig, Trace};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::time::Duration;

const WORKERS: usize = 2;
const ITERS: usize = 4;
const BATCH: usize = 8;
const LR: f32 = 0.2;
const SEED: u64 = 11;
const LAYERS: [usize; 4] = [12, 16, 8, 4];

fn run(telemetry_on: bool) -> TrainResult<Network> {
    let data = Dataset::gaussian_clusters(
        TensorShape::flat(LAYERS[0]),
        *LAYERS.last().unwrap(),
        96,
        0.3,
        SEED + 1,
    );
    let cfg = RuntimeConfig {
        policy: SchemePolicy::Hybrid,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(60),
        telemetry: if telemetry_on {
            TelemetryConfig::enabled()
        } else {
            TelemetryConfig::default()
        },
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    };
    train(&|| presets::mlp(&LAYERS, SEED), &data, None, &cfg)
}

fn span_count(trace: &Trace, track: &str, name: &str) -> (usize, usize) {
    let track = trace
        .tracks
        .iter()
        .find(|t| t.name == track)
        .unwrap_or_else(|| panic!("no track named {track:?}"));
    let count = |kind: EventKind| {
        track
            .events
            .iter()
            .filter(|e| e.name == name && e.kind == kind)
            .count()
    };
    (count(EventKind::Begin), count(EventKind::End))
}

#[test]
fn telemetry_is_a_pure_observer() {
    let off = run(false);
    let on = run(true);
    // A long-lived process keeps the nn probe hook installed after its first
    // traced run; the disabled branch must still be invisible.
    let off_again = run(false);

    let want = flatten_model_params(&off.net);
    assert_eq!(
        flatten_model_params(&on.net),
        want,
        "telemetry on changed the trained replica"
    );
    assert_eq!(
        flatten_model_params(&off_again.net),
        want,
        "a previously-traced process trains differently with telemetry off"
    );
    assert_eq!(off.traffic.snapshot(), on.traffic.snapshot());
    assert!(off.trace.is_none() && off_again.trace.is_none());

    // The traced run recorded the full WFBP story on every worker and shard.
    let trace = on.trace.expect("enabled run returns a trace");
    for w in 0..WORKERS {
        let name = format!("worker {w}");
        let (ib, ie) = span_count(&trace, &name, "iter");
        assert_eq!((ib, ie), (ITERS, ITERS), "{name}: one iter span per iter");
        let (sb, se) = span_count(&trace, &name, "wfbp.sync");
        assert!(sb > 0 && sb == se, "{name}: balanced wfbp.sync spans");
        let (ab, ae) = span_count(&trace, &name, "apply");
        assert_eq!((ab, ae), (sb, se), "{name}: one apply per completed sync");
        let (bb, be) = span_count(&trace, &name, "bwd");
        assert!(bb > 0 && bb == be, "{name}: nn probe recorded backward");
        let shard = format!("shard e{}", WORKERS + w);
        let (vb, ve) = span_count(&trace, &shard, "serve.apply");
        assert!(vb > 0 && vb == ve, "{shard}: balanced serve.apply spans");
    }

    // And the live event stream round-trips through the Chrome exporter.
    let json = chrome::to_chrome_json(std::slice::from_ref(&trace));
    let stats = chrome::validate(&json).expect("live trace must export cleanly");
    assert!(stats.spans > 0 && stats.tracks >= 2 * WORKERS);
}
