//! Property tests for the metrics-plane histogram: every recorded value
//! lands in the log2 bucket that covers it, sum/count/min/max stay exact
//! (only the distribution shape is approximated), quantiles are monotone
//! and never leave the observed range, and per-run delta views subtract
//! cleanly from the cumulative process-global state.

use poseidon::metrics::{bucket_le, Histogram, HistogramSnapshot, HIST_BUCKETS};
use proptest::prelude::*;

fn recorded(vals: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in vals {
        // `observe` is the ungated path; these invariants must hold no
        // matter what state the process-global enable flag is in.
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Each value lands in exactly the bucket whose (le(i-1), le(i)] range
    /// covers it, so bucket counts always sum to the total count.
    #[test]
    fn values_land_in_their_covering_bucket(vals in proptest::collection::vec(any::<u64>(), 1..64)) {
        let snap = recorded(&vals);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), vals.len() as u64);
        for &v in &vals {
            let i = (0..HIST_BUCKETS)
                .find(|&i| snap.buckets[i] > 0 && v <= bucket_le(i))
                .expect("some bucket at or above v is occupied");
            // v fits under le(i); if v were also under le(i-1) it could
            // still belong to an earlier occupied bucket, which the
            // cumulative exposition renders identically — so only the
            // upper bound is a per-value invariant.
            prop_assert!(v <= bucket_le(i));
        }
        // The top bucket's upper bound covers everything.
        prop_assert_eq!(bucket_le(HIST_BUCKETS - 1), u64::MAX);
    }

    /// Sum, count, min and max are exact regardless of bucketing.
    #[test]
    fn scalar_moments_are_exact(vals in proptest::collection::vec(any::<u32>(), 1..128)) {
        let vals: Vec<u64> = vals.into_iter().map(u64::from).collect();
        let snap = recorded(&vals);
        prop_assert_eq!(snap.count, vals.len() as u64);
        prop_assert_eq!(snap.sum, vals.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *vals.iter().min().unwrap());
        prop_assert_eq!(snap.max, *vals.iter().max().unwrap());
    }

    /// Quantiles stay inside [min, max] and are monotone in q.
    #[test]
    fn quantiles_are_bounded_and_monotone(
        vals in proptest::collection::vec(any::<u64>(), 1..128),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let snap = recorded(&vals);
        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = None;
        for q in sorted {
            let est = snap.quantile(q);
            prop_assert!(est >= snap.min && est <= snap.max,
                "q={q}: {est} outside [{}, {}]", snap.min, snap.max);
            if let Some(p) = prev {
                prop_assert!(est >= p, "quantile not monotone: q={q} gave {est} < {p}");
            }
            prev = Some(est);
        }
    }

    /// The p50 of a log2 histogram is within one bucket (2x) of the true
    /// median — the precision the straggler detector relies on.
    #[test]
    fn p50_within_one_bucket_of_true_median(
        vals in proptest::collection::vec(1u64..u64::MAX / 2, 1..128),
    ) {
        let snap = recorded(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        let est = snap.quantile(0.5);
        prop_assert!(est >= true_median / 2 && est <= true_median.saturating_mul(2),
            "p50 {est} not within 2x of true median {true_median}");
    }

    /// delta() recovers exactly what was recorded between two snapshots of
    /// the same cumulative histogram.
    #[test]
    fn delta_recovers_the_second_batch(
        first in proptest::collection::vec(any::<u32>(), 0..64),
        second in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let h = Histogram::new();
        for &v in &first {
            h.observe(u64::from(v));
        }
        let earlier = h.snapshot();
        for &v in &second {
            h.observe(u64::from(v));
        }
        let d = h.snapshot().delta(&earlier);
        prop_assert_eq!(d.count, second.len() as u64);
        prop_assert_eq!(d.sum, second.iter().map(|&v| u64::from(v)).sum::<u64>());
        prop_assert_eq!(d.buckets.iter().sum::<u64>(), second.len() as u64);
    }

    /// bucket_le is strictly increasing (so cumulative exposition buckets
    /// are well ordered) and empty histograms are inert.
    #[test]
    fn bucket_bounds_strictly_increase(i in 1usize..HIST_BUCKETS) {
        prop_assert!(bucket_le(i) > bucket_le(i - 1));
        let empty = HistogramSnapshot::empty();
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.quantile(0.5), 0);
        prop_assert_eq!(empty.mean(), 0.0);
    }
}
