//! Thread-budget proof for the evented transport: one endpoint costs a
//! constant number of threads (poller + acceptor) no matter how many peers it
//! meshes with, while the threaded baseline pays one reader thread per
//! inbound stream. Counted straight from `/proc/self/status`, so the tests
//! are Linux-only.

#![cfg(target_os = "linux")]

use poseidon::transport::{
    bind_ephemeral, Message, TcpFabricSpec, TcpTransport, ThreadedTcpTransport, Transport,
};
use std::sync::Mutex;
use std::time::Duration;

/// Live threads in this process, per the kernel.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

fn mesh_spec(endpoints: usize) -> (Vec<std::net::TcpListener>, TcpFabricSpec) {
    let (listeners, addrs) = bind_ephemeral(endpoints).expect("bind");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: (0..endpoints).collect(),
        connect_timeout: Duration::from_secs(30),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        reconnect_timeout: Duration::from_secs(5),
    };
    (listeners, spec)
}

/// Connects a full mesh concurrently (every endpoint must dial while the
/// others accept) and hands the endpoints back in index order.
fn connect_mesh<T, F>(endpoints: usize, connect: F) -> Vec<T>
where
    T: Transport + Send,
    F: Fn(&TcpFabricSpec, usize, std::net::TcpListener) -> T + Sync,
{
    let (listeners, spec) = mesh_spec(endpoints);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(endpoints));
    std::thread::scope(|s| {
        for (me, listener) in listeners.into_iter().enumerate() {
            let (spec, done, connect) = (&spec, &done, &connect);
            s.spawn(move || {
                let ep = connect(spec, me, listener);
                done.lock().unwrap().push((me, ep));
            });
        }
    });
    let mut eps = done.into_inner().unwrap();
    eps.sort_by_key(|(me, _)| *me);
    assert_eq!(eps.len(), endpoints, "every endpoint must connect");
    eps.into_iter().map(|(_, ep)| ep).collect()
}

/// One frame around the ring proves every endpoint is live.
fn prove_ring<T: Transport>(eps: &[T]) {
    for (i, ep) in eps.iter().enumerate() {
        ep.send((i + 1) % eps.len(), Message::Ack { upto: i as u64 })
            .expect("ring send");
    }
    for (i, ep) in eps.iter().enumerate() {
        let env = ep.recv_timeout(Duration::from_secs(20)).expect("ring recv");
        let prev = (i + eps.len() - 1) % eps.len();
        assert_eq!(env.from, prev);
        assert_eq!(env.msg, Message::Ack { upto: prev as u64 });
    }
}

/// The tentpole claim: a 33-endpoint mesh (32 peers per endpoint) costs a
/// fixed two threads per endpoint — poller + acceptor — not one per peer,
/// and shutdown joins every one of them.
#[test]
fn evented_mesh_at_32_peers_is_two_threads_per_endpoint() {
    const ENDPOINTS: usize = 33;
    let baseline = thread_count();
    let mut eps = connect_mesh(ENDPOINTS, |spec, me, listener| {
        TcpTransport::connect_with_listener(spec, me, listener, None).expect("connect")
    });
    let steady = thread_count();
    let delta = steady - baseline;
    assert!(
        delta <= 2 * ENDPOINTS,
        "evented mesh spawned {delta} threads for {ENDPOINTS} endpoints; \
         budget is 2 per endpoint (poller + acceptor)"
    );
    assert!(
        delta >= ENDPOINTS,
        "mesh reports only {delta} threads — endpoints are missing their poller"
    );
    prove_ring(&eps);
    for ep in &mut eps {
        ep.shutdown().expect("shutdown");
    }
    drop(eps);
    let after = thread_count();
    assert!(
        after <= baseline + 1,
        "shutdown must join poller and acceptor threads ({after} live, baseline {baseline})"
    );
}

/// The baseline it replaces: thread-per-stream scales with the mesh. Even a
/// small 8-endpoint threaded mesh costs ~8 threads per endpoint (acceptor +
/// 7 readers), several times the evented budget.
#[test]
fn threaded_mesh_pays_a_thread_per_inbound_stream() {
    const ENDPOINTS: usize = 8;
    let baseline = thread_count();
    let mut eps = connect_mesh(ENDPOINTS, |spec, me, listener| {
        ThreadedTcpTransport::connect_with_listener(spec, me, listener, None).expect("connect")
    });
    let steady = thread_count();
    let delta = steady - baseline;
    assert!(
        delta >= ENDPOINTS * (ENDPOINTS - 1),
        "threaded mesh reports {delta} threads; expected at least one reader \
         per inbound stream ({} streams)",
        ENDPOINTS * (ENDPOINTS - 1)
    );
    prove_ring(&eps);
    for ep in &mut eps {
        ep.shutdown().expect("shutdown");
    }
}
