//! Property tests for the pooled-buffer plane: every pooled encode is
//! byte-identical to its fresh-allocation twin, pooled payloads survive the
//! frame codec bit-exactly for every message variant, and pool exhaustion
//! degrades to plain allocation — it never blocks, never corrupts, and never
//! leaks one lease's bytes into another.

use bytes::Bytes;
use poseidon::pool::{BufPool, MAX_CLASS_BYTES, MIN_CLASS_BYTES};
use poseidon::transport::Message;
use poseidon::wire::{
    decode_codec, decode_frame, encode_codec, encode_f32s, encode_f32s_pooled, encode_frame, Codec,
};
use poseidon_tensor::compress::make_compressor;
use proptest::prelude::*;

/// Buffers retained per class (`CLASS_CAP` in `pool.rs`); exhaustion tests
/// deliberately lease more than this many buffers at once.
const CLASS_CAP: usize = 32;

/// Every message variant with the payload built two ways: once as plain
/// `Bytes` and once through a pool lease. The two must be indistinguishable
/// on the wire.
fn message_pair() -> impl Strategy<Value = (Message, Message)> {
    let payload = proptest::collection::vec(any::<u8>(), 0..2048);
    (
        any::<u64>(),
        0u32..=poseidon::wire::MAX_LAYER_INDEX,
        any::<u32>(),
        payload,
        0u8..6,
    )
        .prop_map(|(iter, layer, chunk, data, variant)| {
            let mut lease = BufPool::global().get(data.len());
            lease.copy_from_slice(&data);
            let pooled = lease.freeze();
            let fresh = Bytes::from(data);
            let build = |data: Bytes| match variant {
                0 => Message::GradChunk {
                    iter,
                    layer,
                    chunk,
                    codec: Codec::Identity,
                    data,
                },
                1 => Message::ParamChunk {
                    iter,
                    layer,
                    chunk,
                    codec: Codec::Identity,
                    data,
                },
                2 => Message::SfPush { iter, layer, data },
                3 => Message::ParamMatrix { iter, layer, data },
                4 => Message::Ack { upto: iter },
                _ => Message::Nack { expect: iter },
            };
            (build(fresh), build(pooled))
        })
}

proptest! {
    /// The pooled f32 codec is bit-identical to the allocating one — NaNs,
    /// infinities, negative zero and all.
    #[test]
    fn pooled_f32_encode_matches_fresh(bits in proptest::collection::vec(any::<u32>(), 0..512)) {
        let vals: Vec<f32> = bits.into_iter().map(f32::from_bits).collect();
        prop_assert_eq!(encode_f32s_pooled(&vals), encode_f32s(&vals));
    }

    /// The registry's sender-side entry point routes the identity codec
    /// through the pooled encoder: its output is bit-identical to both the
    /// pooled and the compressor's own allocating encode, and decodes back
    /// to the exact input.
    #[test]
    fn encode_codec_identity_matches_pooled(
        bits in proptest::collection::vec(any::<u32>(), 0..512),
    ) {
        let vals: Vec<f32> = bits.into_iter().map(f32::from_bits).collect();
        let mut comp = make_compressor(Codec::Identity, vals.len());
        let via_registry = encode_codec(comp.as_mut(), &vals);
        prop_assert_eq!(&via_registry, &encode_f32s_pooled(&vals));
        prop_assert_eq!(&via_registry, &comp.compress(&vals));
        let back = decode_codec(Codec::Identity, &via_registry, vals.len()).expect("decodes");
        let want: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    /// For every frame variant, a payload carried in a frozen pool lease
    /// produces the exact same wire frame as a fresh allocation, and the
    /// decoded message re-encodes identically.
    #[test]
    fn pooled_payloads_roundtrip_every_variant((fresh, pooled) in message_pair()) {
        let frame_fresh = encode_frame(&fresh);
        let frame_pooled = encode_frame(&pooled);
        prop_assert_eq!(&frame_fresh, &frame_pooled);
        let (decoded, consumed) = decode_frame(&frame_pooled).expect("pooled frame decodes");
        prop_assert_eq!(consumed, frame_pooled.len());
        prop_assert_eq!(encode_frame(&decoded), frame_fresh);
    }

    /// Leasing far more buffers than a class retains never blocks and never
    /// aliases: every lease is zero-filled, holds its own bytes, and the
    /// pattern written to one lease never shows up in another.
    #[test]
    fn exhaustion_degrades_to_allocation(
        len in 1usize..4096,
        extra in 1usize..3 * CLASS_CAP,
    ) {
        let pool = BufPool::new();
        // Warm the class so some leases are recycled and some are fresh.
        drop((0..CLASS_CAP / 2).map(|_| pool.get(len)).collect::<Vec<_>>());
        let mut leases: Vec<_> = (0..CLASS_CAP + extra).map(|_| pool.get(len)).collect();
        for (i, lease) in leases.iter_mut().enumerate() {
            prop_assert_eq!(lease.len(), len);
            prop_assert!(lease.iter().all(|&b| b == 0), "lease {} not zeroed", i);
            lease.fill(i as u8 + 1);
        }
        for (i, lease) in leases.iter().enumerate() {
            prop_assert!(
                lease.iter().all(|&b| b == i as u8 + 1),
                "lease {} corrupted by a sibling",
                i
            );
        }
        drop(leases);
        let stats = pool.stats();
        prop_assert!(
            stats.resident as usize <= CLASS_CAP,
            "class retained {} buffers, cap is {}",
            stats.resident,
            CLASS_CAP
        );
    }

    /// Dropped leases are recycled: after a warm-up round, gets in the same
    /// class are pool hits, and a recycled buffer always comes back zeroed
    /// even after being filled with garbage.
    #[test]
    fn dropped_leases_recycle_zeroed(len in 1usize..MAX_CLASS_BYTES / 1024, fill in 1u8..) {
        let pool = BufPool::new();
        let mut first = pool.get(len);
        first.fill(fill);
        drop(first);
        let before = pool.stats();
        prop_assert_eq!(before.resident, 1);
        let second = pool.get(len);
        let after = pool.stats();
        prop_assert_eq!(after.hits, before.hits + 1, "reuse must be a pool hit");
        prop_assert!(second.iter().all(|&b| b == 0), "recycled lease must be zeroed");
    }
}

#[test]
fn oversized_leases_bypass_the_pool_but_stay_correct() {
    let pool = BufPool::new();
    let mut lease = pool.get(MAX_CLASS_BYTES + 1);
    assert_eq!(lease.len(), MAX_CLASS_BYTES + 1);
    assert!(lease.iter().all(|&b| b == 0));
    lease.fill(0xAB);
    let bytes = lease.freeze();
    assert!(bytes.iter().all(|&b| b == 0xAB));
    drop(bytes);
    assert_eq!(
        pool.stats().resident,
        0,
        "oversized buffers must never pool"
    );
}

#[test]
fn class_boundaries_lease_exact_lengths() {
    let pool = BufPool::new();
    for class_size in [MIN_CLASS_BYTES, MIN_CLASS_BYTES << 3, MAX_CLASS_BYTES] {
        for len in [class_size - 1, class_size, class_size + 1] {
            let lease = pool.get(len);
            assert_eq!(lease.len(), len, "lease length must be exact at {len}");
            assert_eq!(lease.freeze().len(), len);
        }
    }
}
