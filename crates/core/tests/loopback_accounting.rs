//! Pins the loop-back accounting contract on *both* transports: messages
//! between endpoints colocated on one physical node are delivered but never
//! counted by [`TrafficCounters`], while cross-node messages are counted at
//! exactly their encoded frame length. Table 1's `(P1 + P2 − 2)/P2` factor
//! depends on this — a colocated worker/shard pair's exchange is free.

use bytes::Bytes;
use poseidon::transport::{
    bind_ephemeral, fabric_with_nodes, Message, TcpFabricSpec, TcpTransport, TrafficCounters,
    Transport,
};
use poseidon::wire::FRAME_HEADER_BYTES;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn grad(iter: u64, payload: usize) -> Message {
    Message::GradChunk {
        iter,
        layer: 0,
        chunk: 0,
        codec: poseidon::wire::Codec::Identity,
        data: Bytes::from(vec![0x5Au8; payload]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In-proc fabric, arbitrary colocation layout and message plan: only
    /// cross-node messages are counted, each at its frame length, and every
    /// message (loop-back included) is delivered.
    #[test]
    fn inproc_loopback_uncounted_cross_node_exact(
        node_of_endpoint in proptest::collection::vec(0usize..4, 2..8),
        plan in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), 0usize..256),
            1..32,
        ),
    ) {
        let (eps, counters) = fabric_with_nodes(&node_of_endpoint);
        let n = eps.len();
        let mut expected_total = 0u64;
        let mut expected_deliveries = vec![0usize; n];
        for &(from_raw, to_raw, payload) in &plan {
            let from = from_raw as usize % n;
            let to = to_raw as usize % n;
            let msg = grad(0, payload);
            if node_of_endpoint[from] != node_of_endpoint[to] {
                expected_total += msg.wire_bytes();
            }
            eps[from].send(to, msg).unwrap();
            expected_deliveries[to] += 1;
        }
        prop_assert_eq!(counters.total_bytes(), expected_total);
        for (ep, &want) in eps.iter().zip(&expected_deliveries) {
            let mut got = 0;
            while ep.try_recv().unwrap().is_some() {
                got += 1;
            }
            prop_assert_eq!(got, want, "endpoint lost or invented messages");
        }
        // tx and rx ledgers agree in aggregate.
        let tx_sum: u64 = (0..counters.nodes()).map(|x| counters.tx_bytes(x)).sum();
        let rx_sum: u64 = (0..counters.nodes()).map(|x| counters.rx_bytes(x)).sum();
        prop_assert_eq!(tx_sum, rx_sum);
    }
}

/// The same contract over real sockets: endpoints 0 and 1 share node 0,
/// endpoint 2 sits alone on node 1. Colocated traffic crosses the socket but
/// never the ledger; remote traffic is counted at frame length.
#[test]
fn tcp_loopback_uncounted_cross_node_exact() {
    let node_of_endpoint = [0usize, 0, 1];
    let (listeners, addrs) = bind_ephemeral(3).expect("bind");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: node_of_endpoint.to_vec(),
        connect_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        reconnect_timeout: Duration::from_secs(5),
    };
    let counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
    const PAYLOAD: usize = 96;
    const ROUNDS: u64 = 10;

    std::thread::scope(|s| {
        for (me, listener) in listeners.into_iter().enumerate() {
            let spec = spec.clone();
            let counters = Arc::clone(&counters);
            s.spawn(move || {
                let mut ep =
                    TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                        .expect("mesh");
                match me {
                    0 => {
                        for i in 0..ROUNDS {
                            ep.send(1, grad(i, PAYLOAD)).unwrap(); // colocated
                            ep.send(0, grad(i, PAYLOAD)).unwrap(); // self
                            ep.send(2, grad(i, PAYLOAD)).unwrap(); // remote
                        }
                        for i in 0..ROUNDS {
                            let env = ep.recv().unwrap();
                            assert_eq!(env.from, 0, "self loop-back keeps origin");
                            assert_eq!(env.msg.iter(), i);
                        }
                    }
                    1 => {
                        for i in 0..ROUNDS {
                            let env = ep.recv().unwrap();
                            assert_eq!(env.from, 0);
                            assert_eq!(env.msg.iter(), i);
                        }
                    }
                    _ => {
                        for i in 0..ROUNDS {
                            let env = ep.recv().unwrap();
                            assert_eq!(env.from, 0);
                            assert_eq!(env.msg.iter(), i);
                        }
                    }
                }
                ep.shutdown().unwrap();
            });
        }
    });

    // Of 3 sends per round only the node 0 -> node 1 one is counted.
    let frame = (FRAME_HEADER_BYTES + PAYLOAD) as u64;
    assert_eq!(counters.total_bytes(), ROUNDS * frame);
    assert_eq!(counters.tx_bytes(0), ROUNDS * frame);
    assert_eq!(counters.rx_bytes(1), ROUNDS * frame);
    assert_eq!(counters.rx_bytes(0), 0, "loop-back must not be counted");
}

/// Both transports charge the identical number of bytes for the identical
/// message plan — the in-proc fabric is a faithful accounting model of TCP.
#[test]
fn transports_agree_on_counted_bytes() {
    let node_of_endpoint = [0usize, 0, 1];
    let payloads = [0usize, 1, 13, 128, 1024];

    // In-proc run.
    let (inproc_eps, inproc_counters) = fabric_with_nodes(&node_of_endpoint);
    for (i, &p) in payloads.iter().enumerate() {
        inproc_eps[0].send(1, grad(i as u64, p)).unwrap();
        inproc_eps[0].send(2, grad(i as u64, p)).unwrap();
        inproc_eps[2].send(0, grad(i as u64, p)).unwrap();
    }

    // TCP run of the same plan.
    let (listeners, addrs) = bind_ephemeral(3).expect("bind");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: node_of_endpoint.to_vec(),
        connect_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        reconnect_timeout: Duration::from_secs(5),
    };
    let tcp_counters = Arc::new(TrafficCounters::new(spec.physical_nodes()));
    std::thread::scope(|s| {
        for (me, listener) in listeners.into_iter().enumerate() {
            let spec = spec.clone();
            let counters = Arc::clone(&tcp_counters);
            s.spawn(move || {
                let mut ep =
                    TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                        .expect("mesh");
                match me {
                    0 => {
                        for (i, &p) in payloads.iter().enumerate() {
                            ep.send(1, grad(i as u64, p)).unwrap();
                            ep.send(2, grad(i as u64, p)).unwrap();
                        }
                        for _ in payloads {
                            ep.recv().unwrap();
                        }
                    }
                    1 => {
                        for _ in payloads {
                            ep.recv().unwrap();
                        }
                    }
                    _ => {
                        for (i, &p) in payloads.iter().enumerate() {
                            ep.send(0, grad(i as u64, p)).unwrap();
                        }
                        for _ in payloads {
                            ep.recv().unwrap();
                        }
                    }
                }
                ep.shutdown().unwrap();
            });
        }
    });

    assert_eq!(inproc_counters.total_bytes(), tcp_counters.total_bytes());
    assert_eq!(
        inproc_counters.per_node_totals(),
        tcp_counters.per_node_totals()
    );
    assert_eq!(
        inproc_counters.snapshot(),
        tcp_counters.snapshot(),
        "full tx/rx ledgers must agree between transports"
    );
}
