//! Stochastic gradient descent with momentum and weight decay.

use crate::network::Network;
use poseidon_tensor::Matrix;

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Learning rate ε in the paper's update equation.
    pub learning_rate: f32,
    /// Classical momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables decay).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }
}

/// Optimiser state: one velocity buffer per trainable layer.
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Option<(Matrix, Matrix)>>,
}

impl Sgd {
    /// Creates an optimiser for `net` with the given configuration.
    pub fn new(net: &Network, config: SgdConfig) -> Self {
        let velocity = (0..net.num_layers())
            .map(|l| {
                net.layer(l).params().map(|p| {
                    (
                        Matrix::zeros(p.weights.rows(), p.weights.cols()),
                        Matrix::zeros(p.bias.rows(), p.bias.cols()),
                    )
                })
            })
            .collect();
        Self { config, velocity }
    }

    /// The configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Updates the learning rate (for step decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Applies one SGD step using each layer's own accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if `net`'s layer structure changed since construction.
    pub fn step(&mut self, net: &mut Network) {
        assert_eq!(
            net.num_layers(),
            self.velocity.len(),
            "network structure changed"
        );
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        for l in 0..net.num_layers() {
            let Some(vel) = self.velocity[l].as_mut() else {
                continue;
            };
            let p = net
                .layer_mut(l)
                .params_mut()
                .expect("trainable layer lost its parameters");
            // v = mu*v - lr*(g + wd*w); w += v
            let (vw, vb) = vel;
            vw.scale(mu);
            vw.axpy(-lr, &p.grad_weights);
            if wd != 0.0 {
                vw.axpy(-lr * wd, &p.weights);
            }
            vb.scale(mu);
            vb.axpy(-lr, &p.grad_bias);
            if wd != 0.0 {
                vb.axpy(-lr * wd, &p.bias);
            }
            p.weights.add_assign(vw);
            p.bias.add_assign(vb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::TensorShape;
    use crate::layers::FullyConnected;
    use crate::loss::SoftmaxCrossEntropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(TensorShape::flat(2)).with(Box::new(FullyConnected::new("fc", 2, 2, &mut rng)))
    }

    #[test]
    fn plain_sgd_equals_manual_axpy() {
        let mut a = net(1);
        let mut b = net(1);
        let x = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let labels = [0usize, 1];
        let head = SoftmaxCrossEntropy;

        let out = head.evaluate(&a.forward(&x), &labels);
        a.backward(&out.grad);
        let mut opt = Sgd::new(
            &a,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
        );
        opt.step(&mut a);

        let out_b = head.evaluate(&b.forward(&x), &labels);
        b.backward(&out_b.grad);
        b.apply_own_grads(-0.1);

        assert!(a.max_param_diff(&b) < 1e-7);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        // Two steps with the same gradient: with momentum the second step is
        // larger than the first.
        let mut n = net(2);
        let before = n.layer(0).params().unwrap().weights.clone();
        let g = Matrix::filled(2, 2, 1.0);
        let mut opt = Sgd::new(
            &n,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );

        n.layer_mut(0).params_mut().unwrap().grad_weights = g.clone();
        opt.step(&mut n);
        let after1 = n.layer(0).params().unwrap().weights.clone();
        n.layer_mut(0).params_mut().unwrap().grad_weights = g.clone();
        opt.step(&mut n);
        let after2 = n.layer(0).params().unwrap().weights.clone();

        let step1 = before.max_abs_diff(&after1);
        let step2 = after1.max_abs_diff(&after2);
        assert!((step1 - 0.1).abs() < 1e-6);
        assert!(
            (step2 - 0.19).abs() < 1e-6,
            "second step should be lr*(1+mu)"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut n = net(3);
        n.layer_mut(0).params_mut().unwrap().weights = Matrix::filled(2, 2, 1.0);
        n.layer_mut(0).params_mut().unwrap().grad_weights = Matrix::zeros(2, 2);
        let mut opt = Sgd::new(
            &n,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
            },
        );
        opt.step(&mut n);
        let w = &n.layer(0).params().unwrap().weights;
        assert!(w.as_slice().iter().all(|&v| (v - 0.95).abs() < 1e-6));
    }

    #[test]
    fn learning_rate_can_be_decayed() {
        let n = net(4);
        let mut opt = Sgd::new(&n, SgdConfig::default());
        opt.set_learning_rate(0.001);
        assert_eq!(opt.config().learning_rate, 0.001);
    }
}
