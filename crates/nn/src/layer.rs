//! The layer abstraction: parameter blocks, shapes and the `Layer` trait.

use poseidon_tensor::{Matrix, SfBatch};

/// The spatial shape of one sample's activation tensor, `channels × height × width`.
///
/// Activations for a batch of `K` samples are stored as a `K × (c·h·w)`
/// row-major [`Matrix`]; this struct carries the interpretation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl TensorShape {
    /// Creates a shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// A flat feature vector of length `n` (shape `n × 1 × 1`).
    pub fn flat(n: usize) -> Self {
        Self { c: n, h: 1, w: 1 }
    }

    /// Total number of elements per sample.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// `true` iff the shape has zero elements (never for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// Coarse layer classification used by the communication-scheme selector.
///
/// The paper's Algorithm 1 distinguishes FC layers (decomposable gradients,
/// SFB eligible) from everything else (indecomposable, always PS).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Fully-connected: gradient is a sum of per-sample rank-1 matrices.
    FullyConnected,
    /// Convolutional: sparse, indecomposable updates.
    Convolutional,
    /// Parameter-free layers (pooling, activation, flatten, ...).
    Stateless,
}

/// The trainable parameters and current gradients of one layer.
///
/// Weights and bias are kept separate so SFB can transmit the weight gradient
/// as factors while the (tiny) bias gradient rides along; both are updated
/// atomically by the syncer's `Move` step.
#[derive(Clone, Debug)]
pub struct ParamBlock {
    /// Weight matrix. For FC layers: `out × in`. For conv layers:
    /// `c_out × (c_in · kh · kw)`.
    pub weights: Matrix,
    /// Bias vector as a `1 × out` matrix.
    pub bias: Matrix,
    /// Accumulated weight gradient (same shape as `weights`).
    pub grad_weights: Matrix,
    /// Accumulated bias gradient (same shape as `bias`).
    pub grad_bias: Matrix,
}

impl ParamBlock {
    /// Creates a zero-initialised block for a `rows × cols` weight matrix with
    /// `rows` biases.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            weights: Matrix::zeros(rows, cols),
            bias: Matrix::zeros(1, rows),
            grad_weights: Matrix::zeros(rows, cols),
            grad_bias: Matrix::zeros(1, rows),
        }
    }

    /// Total number of trainable scalars (weights + biases).
    pub fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Zeroes both gradients (start of an iteration).
    pub fn clear_grads(&mut self) {
        self.grad_weights.clear();
        self.grad_bias.clear();
    }

    /// Applies `params += alpha * grads` using the *given* gradients, leaving
    /// this block's own gradient buffers untouched. Used when the update comes
    /// from the network (a remote aggregate) rather than local backprop.
    pub fn apply_update(&mut self, grad_w: &Matrix, grad_b: &Matrix, alpha: f32) {
        self.weights.axpy(alpha, grad_w);
        self.bias.axpy(alpha, grad_b);
    }

    /// Applies `params += alpha * own grads` (single-node SGD step).
    pub fn apply_own_grads(&mut self, alpha: f32) {
        // Split borrows: temporarily move gradients out to satisfy aliasing.
        let gw = std::mem::replace(&mut self.grad_weights, Matrix::zeros(1, 1));
        let gb = std::mem::replace(&mut self.grad_bias, Matrix::zeros(1, 1));
        self.weights.axpy(alpha, &gw);
        self.bias.axpy(alpha, &gb);
        self.grad_weights = gw;
        self.grad_bias = gb;
    }

    /// Overwrites the parameters with fresh values (a PS pull).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_params(&mut self, weights: &Matrix, bias: &Matrix) {
        assert_eq!(
            self.weights.shape(),
            weights.shape(),
            "weight shape mismatch"
        );
        assert_eq!(self.bias.shape(), bias.shape(), "bias shape mismatch");
        self.weights = weights.clone();
        self.bias = bias.clone();
    }
}

/// A differentiable layer of a sequential network.
///
/// The contract mirrors Caffe's: `forward` caches whatever `backward` needs;
/// `backward` consumes the gradient w.r.t. the layer output, fills the
/// parameter gradients (if any) and returns the gradient w.r.t. the layer
/// input. Layers are used strictly in forward-then-backward alternation.
pub trait Layer: Send {
    /// Human-readable unique name (used as the syncer key).
    fn name(&self) -> &str;

    /// Classification for the communication-scheme selector.
    fn kind(&self) -> LayerKind;

    /// Output activation shape per sample.
    fn output_shape(&self) -> TensorShape;

    /// Forward pass on a batch (`K × in_features`), returns `K × out_features`.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass: takes `∂L/∂output` (`K × out_features`), accumulates
    /// parameter gradients, returns `∂L/∂input`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// The layer's parameters, if it has any.
    fn params(&self) -> Option<&ParamBlock> {
        None
    }

    /// Mutable access to the layer's parameters, if it has any.
    fn params_mut(&mut self) -> Option<&mut ParamBlock> {
        None
    }

    /// The per-sample sufficient factors of the most recent `backward` call.
    ///
    /// Only FC layers return `Some`: their weight gradient over a batch is
    /// `Σₖ uₖvₖᵀ` with `uₖ` the back-propagated error and `vₖ` the input
    /// activation of sample `k`. The bias gradient is `Σₖ uₖ`, so the factors
    /// alone fully determine the update.
    fn sufficient_factors(&self) -> Option<SfBatch> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_shape_len_and_flat() {
        let s = TensorShape::new(3, 32, 32);
        assert_eq!(s.len(), 3072);
        assert!(!s.is_empty());
        let f = TensorShape::flat(100);
        assert_eq!(f.len(), 100);
        assert_eq!(f.to_string(), "100x1x1");
    }

    #[test]
    fn param_block_counts_weights_and_bias() {
        let p = ParamBlock::new(10, 20);
        assert_eq!(p.num_params(), 210);
    }

    #[test]
    fn apply_own_grads_steps_parameters() {
        let mut p = ParamBlock::new(2, 2);
        p.grad_weights = Matrix::filled(2, 2, 1.0);
        p.grad_bias = Matrix::filled(1, 2, 2.0);
        p.apply_own_grads(-0.5);
        assert!(p.weights.as_slice().iter().all(|&w| w == -0.5));
        assert!(p.bias.as_slice().iter().all(|&b| b == -1.0));
        // Gradients must survive the call (the syncer reads them afterwards).
        assert_eq!(p.grad_weights, Matrix::filled(2, 2, 1.0));
    }

    #[test]
    fn apply_update_uses_external_grads() {
        let mut p = ParamBlock::new(1, 1);
        p.grad_weights = Matrix::filled(1, 1, 99.0); // must be ignored
        let gw = Matrix::filled(1, 1, 2.0);
        let gb = Matrix::filled(1, 1, 4.0);
        p.apply_update(&gw, &gb, 0.25);
        assert_eq!(p.weights[(0, 0)], 0.5);
        assert_eq!(p.bias[(0, 0)], 1.0);
    }

    #[test]
    fn set_params_replaces_values() {
        let mut p = ParamBlock::new(1, 2);
        p.set_params(&Matrix::filled(1, 2, 3.0), &Matrix::filled(1, 1, 4.0));
        assert_eq!(p.weights.as_slice(), &[3.0, 3.0]);
        assert_eq!(p.bias[(0, 0)], 4.0);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn set_params_checks_shape() {
        let mut p = ParamBlock::new(1, 2);
        p.set_params(&Matrix::zeros(2, 2), &Matrix::zeros(1, 1));
    }

    #[test]
    fn clear_grads_zeroes_only_grads() {
        let mut p = ParamBlock::new(2, 2);
        p.weights = Matrix::filled(2, 2, 1.0);
        p.grad_weights = Matrix::filled(2, 2, 5.0);
        p.grad_bias = Matrix::filled(1, 2, 5.0);
        p.clear_grads();
        assert_eq!(p.grad_weights.max_abs(), 0.0);
        assert_eq!(p.grad_bias.max_abs(), 0.0);
        assert_eq!(p.weights, Matrix::filled(2, 2, 1.0));
    }
}
