//! A per-layer compute probe, so an observer above this crate (the
//! telemetry recorder in `poseidon::telemetry`) can time forward/backward
//! passes without inverting the dependency graph: `poseidon` depends on
//! `poseidon_nn`, so this crate cannot call the recorder directly. Instead
//! it emits [`ProbeEvent`]s through a process-global hook that the recorder
//! installs once when tracing is enabled.
//!
//! The emit path is designed to vanish when unused: one atomic load of the
//! [`OnceLock`] and a branch. The hook must never touch the computation —
//! it observes; training stays bitwise identical with or without it.

use std::sync::OnceLock;

/// A compute-side event: a layer's forward/backward pass, or one
/// batch-parallel worker's chunk of it, starting or finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// Layer `layer`'s forward pass starts.
    ForwardBegin {
        /// Slot index.
        layer: usize,
    },
    /// Layer `layer`'s forward pass is complete.
    ForwardEnd {
        /// Slot index.
        layer: usize,
    },
    /// Layer `layer`'s backward pass starts.
    BackwardBegin {
        /// Slot index.
        layer: usize,
    },
    /// Layer `layer`'s gradients are final (fires before the WFBP callback).
    BackwardEnd {
        /// Slot index.
        layer: usize,
    },
    /// A batch-parallel worker starts on sample rows `lo..hi`.
    ChunkBegin {
        /// First row of the chunk.
        lo: usize,
        /// One past the last row.
        hi: usize,
    },
    /// A batch-parallel worker finished rows `lo..hi`.
    ChunkEnd {
        /// First row of the chunk.
        lo: usize,
        /// One past the last row.
        hi: usize,
    },
}

/// The hook signature. Must be cheap and must not panic.
pub type ProbeFn = fn(ProbeEvent);

static HOOK: OnceLock<ProbeFn> = OnceLock::new();

/// Installs the process-global probe hook. First install wins; later calls
/// are ignored (the recorder installs the same hook every time it enables).
pub fn install(hook: ProbeFn) {
    let _ = HOOK.set(hook);
}

/// Emits an event to the installed hook, if any.
#[inline]
pub fn emit(ev: ProbeEvent) {
    if let Some(hook) = HOOK.get() {
        hook(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SEEN: AtomicUsize = AtomicUsize::new(0);

    fn counting_hook(_ev: ProbeEvent) {
        SEEN.fetch_add(1, Ordering::Relaxed);
    }

    #[test]
    fn emit_reaches_the_installed_hook() {
        emit(ProbeEvent::ForwardBegin { layer: 0 }); // no hook yet: no-op
        install(counting_hook);
        install(counting_hook); // second install is ignored, not a panic
        let before = SEEN.load(Ordering::Relaxed);
        emit(ProbeEvent::BackwardEnd { layer: 3 });
        assert_eq!(SEEN.load(Ordering::Relaxed), before + 1);
    }
}
