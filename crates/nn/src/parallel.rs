//! Batch-parallel execution helpers for the layer kernels.
//!
//! Layers fan work across a [`crossbeam::thread::scope`] by partitioning
//! *output rows* (or samples) into contiguous chunks, one per compute
//! thread. Every per-element fold the kernels perform is identical no matter
//! how the rows are partitioned, and cross-sample gradient reductions go
//! through [`tree_reduce`], whose combination order depends only on the
//! sample index — so layer outputs and gradients are **bitwise identical at
//! every thread count**. That is the property the distributed-equals-serial
//! invariant (DESIGN §4.4) builds on, and `tests/parallel_determinism.rs`
//! asserts it for thread counts {1, 2, 7}.
//!
//! The thread count is a per-thread knob so the threaded runtime can give
//! each of its workers a bounded share of the machine: explicit
//! [`set_compute_threads`] wins, then the `POSEIDON_THREADS` environment
//! variable, then `std::thread::available_parallelism()`. A count of 1 runs
//! the chunk closure inline on the calling thread — no spawns, the legacy
//! execution path.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static COMPUTE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Pins the compute-thread count for the *calling thread* (and the layer
/// kernels it invokes). Overrides `POSEIDON_THREADS` and the hardware
/// default.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn set_compute_threads(n: usize) {
    assert!(n >= 1, "compute thread count must be >= 1");
    COMPUTE_THREADS.with(|c| c.set(Some(n)));
}

/// Clears a previous [`set_compute_threads`], restoring env/hardware
/// resolution.
pub fn reset_compute_threads() {
    COMPUTE_THREADS.with(|c| c.set(None));
}

/// The compute-thread count in effect on the calling thread:
/// explicit [`set_compute_threads`] > `POSEIDON_THREADS` env >
/// `available_parallelism()` (1 if unknown).
pub fn compute_threads() -> usize {
    if let Some(n) = COMPUTE_THREADS.with(|c| c.get()) {
        return n;
    }
    match std::env::var("POSEIDON_THREADS") {
        Ok(v) => parse_threads(&v).unwrap_or_else(hardware_threads),
        Err(_) => hardware_threads(),
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parses a `POSEIDON_THREADS` value; `None` for anything that is not a
/// positive integer.
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Splits `0..total` into at most `parts` contiguous, non-empty ranges of
/// near-equal length (the first `total % parts` ranges are one longer).
/// Returns an empty vector when `total == 0`.
pub fn chunk_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(total);
    let mut out = Vec::with_capacity(parts);
    if total == 0 {
        return out;
    }
    let base = total / parts;
    let rem = total % parts;
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(row_range, rows_slice)` over contiguous row chunks of `out`
/// (`total_rows` rows of `row_width` elements), one chunk per compute
/// thread. With one thread (or one row) the closure runs inline on the
/// calling thread.
///
/// The chunks partition `out`, so each invocation owns its slice; `f` must
/// not depend on which partition it receives — with the row-range kernels in
/// `poseidon-tensor` every output element is computed identically regardless
/// of the split, keeping results bitwise thread-count independent.
///
/// # Panics
///
/// Panics if `out.len() != total_rows * row_width`, or if a spawned compute
/// thread panics.
pub fn par_row_chunks<F>(total_rows: usize, row_width: usize, out: &mut [f32], f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        total_rows * row_width,
        "par_row_chunks: buffer size mismatch"
    );
    let ranges = chunk_ranges(total_rows, compute_threads());
    if ranges.len() <= 1 {
        f(0..total_rows, out);
        return;
    }
    crossbeam::thread::scope(|scope| {
        let mut rest = out;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * row_width);
            rest = tail;
            let f = &f;
            scope.spawn(move |_| {
                crate::probe::emit(crate::probe::ProbeEvent::ChunkBegin {
                    lo: range.start,
                    hi: range.end,
                });
                f(range.clone(), chunk);
                crate::probe::emit(crate::probe::ProbeEvent::ChunkEnd {
                    lo: range.start,
                    hi: range.end,
                });
            });
        }
    })
    .expect("compute thread panicked");
}

/// Runs `f(slot_range, slots_chunk)` over contiguous chunks of `slots`, one
/// chunk per compute thread — the slot-per-sample counterpart of
/// [`par_row_chunks`], used to fill per-sample gradient partials that are
/// then combined with [`tree_reduce`].
pub fn par_slots<T, F>(slots: &mut [T], f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    let total = slots.len();
    let ranges = chunk_ranges(total, compute_threads());
    if ranges.len() <= 1 {
        f(0..total, slots);
        return;
    }
    crossbeam::thread::scope(|scope| {
        let mut rest = slots;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let f = &f;
            scope.spawn(move |_| {
                crate::probe::emit(crate::probe::ProbeEvent::ChunkBegin {
                    lo: range.start,
                    hi: range.end,
                });
                f(range.clone(), chunk);
                crate::probe::emit(crate::probe::ProbeEvent::ChunkEnd {
                    lo: range.start,
                    hi: range.end,
                });
            });
        }
    })
    .expect("compute thread panicked");
}

/// Reduces `items` with `combine` in a **fixed pairwise tree order** that
/// depends only on the number of items, never on thread count or timing:
/// stride-doubling over the original indices (`0+=1, 2+=3, …`, then
/// `0+=2, 4+=6, …`, and so on). Returns `None` for an empty input.
///
/// Floating-point addition is not associative, so *some* canonical order has
/// to be fixed for per-sample gradient partials; fixing a tree (rather than
/// a left fold) keeps the result independent of how samples were distributed
/// across threads.
pub fn tree_reduce<T>(mut items: Vec<T>, mut combine: impl FnMut(&mut T, &T)) -> Option<T> {
    let n = items.len();
    if n == 0 {
        return None;
    }
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let (left, right) = items.split_at_mut(i + stride);
            combine(&mut left[i], &right[0]);
            i += 2 * stride;
        }
        stride *= 2;
    }
    items.truncate(1);
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_the_input() {
        for total in [0usize, 1, 2, 5, 7, 16, 100] {
            for parts in [1usize, 2, 3, 7, 64] {
                let ranges = chunk_ranges(total, parts);
                assert_eq!(ranges.len(), parts.min(total));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "non-empty");
                    next = r.end;
                }
                assert_eq!(next, total, "covers 0..{total}");
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1, "near-equal sizes");
                }
            }
        }
    }

    #[test]
    fn explicit_thread_count_wins() {
        set_compute_threads(3);
        assert_eq!(compute_threads(), 3);
        set_compute_threads(1);
        assert_eq!(compute_threads(), 1);
        reset_compute_threads();
        assert!(compute_threads() >= 1);
    }

    #[test]
    fn parse_threads_rejects_garbage() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn par_row_chunks_fills_disjoint_rows() {
        for threads in [1usize, 2, 5, 7] {
            set_compute_threads(threads);
            let (rows, width) = (11usize, 3usize);
            let mut out = vec![0.0f32; rows * width];
            par_row_chunks(rows, width, &mut out, |range, chunk| {
                for (i, r) in range.clone().enumerate() {
                    for c in 0..width {
                        chunk[i * width + c] = (r * width + c) as f32;
                    }
                }
            });
            let expect: Vec<f32> = (0..rows * width).map(|v| v as f32).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
        reset_compute_threads();
    }

    #[test]
    fn tree_reduce_uses_fixed_pairwise_order() {
        // Track combination order symbolically: each item is a parenthesised
        // string, so the final string is the exact reduction tree.
        let shape = |n: usize| {
            let items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            tree_reduce(items, |a, b| *a = format!("({a}+{b})")).unwrap()
        };
        assert_eq!(shape(1), "0");
        assert_eq!(shape(2), "(0+1)");
        assert_eq!(shape(3), "((0+1)+2)");
        assert_eq!(shape(4), "((0+1)+(2+3))");
        assert_eq!(shape(5), "(((0+1)+(2+3))+4)");
        assert_eq!(shape(7), "(((0+1)+(2+3))+((4+5)+6))");
    }

    #[test]
    fn tree_reduce_handles_empty_and_sums_correctly() {
        assert_eq!(tree_reduce(Vec::<u64>::new(), |a, b| *a += b), None);
        for n in 1usize..40 {
            let items: Vec<u64> = (1..=n as u64).collect();
            let total = tree_reduce(items, |a, b| *a += b).unwrap();
            assert_eq!(total, (n as u64) * (n as u64 + 1) / 2);
        }
    }

    #[test]
    fn par_slots_covers_every_slot_once() {
        for threads in [1usize, 2, 7] {
            set_compute_threads(threads);
            let mut slots = vec![0u32; 13];
            par_slots(&mut slots, |range, chunk| {
                for (i, s) in range.clone().enumerate() {
                    chunk[i] += s as u32 + 1;
                }
            });
            let expect: Vec<u32> = (1..=13).collect();
            assert_eq!(slots, expect, "threads={threads}");
        }
        reset_compute_threads();
    }
}
