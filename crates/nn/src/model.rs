//! The `Model` abstraction: what Poseidon requires from a computation engine.
//!
//! The paper stresses that WFBP "is generally applicable to other non-chain
//! like structures (e.g., tree-like structures), as the parameter
//! optimization for deep neural networks depends on adjacent layers (and not
//! the whole network)". This trait captures the contract the distributed
//! runtime actually needs — addressable parameter slots and a backward pass
//! that reports per-layer gradient completion — so both the sequential
//! [`crate::network::Network`] and the branched [`crate::graph::GraphNetwork`]
//! can be trained by the same Poseidon client library.

use crate::layer::{Layer, TensorShape};
use poseidon_tensor::Matrix;

/// A trainable model with independently-synchronisable parameter slots.
pub trait Model: Send {
    /// The expected input shape.
    fn input_shape(&self) -> TensorShape;

    /// Number of addressable slots. Slot ids are stable for the lifetime of
    /// the model and shared across identically-constructed replicas.
    fn num_slots(&self) -> usize;

    /// The layer at `id`, or `None` for structural slots (e.g. concat nodes).
    fn slot(&self, id: usize) -> Option<&dyn Layer>;

    /// Mutable access to the layer at `id`.
    fn slot_mut(&mut self, id: usize) -> Option<&mut dyn Layer>;

    /// Feed-forward over a batch.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Backward pass; `on_layer_done(id, layer)` fires the moment slot `id`'s
    /// parameter gradients are final — the WFBP hook. Callback order must
    /// follow gradient-completion order (reverse topological).
    fn backward_with(
        &mut self,
        grad_top: &Matrix,
        on_layer_done: &mut dyn FnMut(usize, &mut dyn Layer),
    );

    /// Backward pass without a callback.
    fn backward(&mut self, grad_top: &Matrix) {
        self.backward_with(grad_top, &mut |_, _| {});
    }

    /// Slot ids that own parameters, ascending.
    fn trainable_slots(&self) -> Vec<usize> {
        (0..self.num_slots())
            .filter(|&id| self.slot(id).is_some_and(|l| l.params().is_some()))
            .collect()
    }

    /// Total trainable scalar count.
    fn total_params(&self) -> usize {
        self.trainable_slots()
            .iter()
            .filter_map(|&id| self.slot(id).and_then(|l| l.params()))
            .map(|p| p.num_params())
            .sum()
    }

    /// Applies `params += alpha * own grads` on every trainable slot
    /// (single-replica SGD).
    fn apply_own_grads(&mut self, alpha: f32) {
        for id in self.trainable_slots() {
            if let Some(p) = self.slot_mut(id).and_then(|l| l.params_mut()) {
                p.apply_own_grads(alpha);
            }
        }
    }

    /// Maximum absolute parameter difference to an identically-structured
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the slot structure differs.
    fn max_param_diff_with(&self, other: &dyn Model) -> f32 {
        assert_eq!(self.num_slots(), other.num_slots(), "slot count mismatch");
        let mut max = 0.0f32;
        for id in 0..self.num_slots() {
            match (
                self.slot(id).and_then(|l| l.params()),
                other.slot(id).and_then(|l| l.params()),
            ) {
                (Some(a), Some(b)) => {
                    max = max.max(a.weights.max_abs_diff(&b.weights));
                    max = max.max(a.bias.max_abs_diff(&b.bias));
                }
                (None, None) => {}
                _ => panic!("trainable-slot mismatch at slot {id}"),
            }
        }
        max
    }
}

impl Model for crate::network::Network {
    fn input_shape(&self) -> TensorShape {
        crate::network::Network::input_shape(self)
    }

    fn num_slots(&self) -> usize {
        self.num_layers()
    }

    fn slot(&self, id: usize) -> Option<&dyn Layer> {
        (id < self.num_layers()).then(|| self.layer(id))
    }

    fn slot_mut(&mut self, id: usize) -> Option<&mut dyn Layer> {
        (id < self.num_layers()).then(|| self.layer_mut(id))
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        crate::network::Network::forward(self, input)
    }

    fn backward_with(
        &mut self,
        grad_top: &Matrix,
        on_layer_done: &mut dyn FnMut(usize, &mut dyn Layer),
    ) {
        crate::network::Network::backward_with(self, grad_top, on_layer_done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn network_implements_model() {
        let mut net = presets::mlp(&[6, 8, 3], 1);
        assert_eq!(Model::num_slots(&net), 3);
        assert_eq!(net.trainable_slots(), vec![0, 2]);
        assert_eq!(Model::total_params(&net), 6 * 8 + 8 + 8 * 3 + 3);
        assert!(
            Model::slot(&net, 1).unwrap().params().is_none(),
            "relu slot"
        );
        assert!(Model::slot(&net, 3).is_none(), "out of range");

        let x = Matrix::filled(2, 6, 0.5);
        let y = Model::forward(&mut net, &x);
        assert_eq!(y.shape(), (2, 3));
        let mut order = Vec::new();
        Model::backward_with(&mut net, &Matrix::filled(2, 3, 0.1), &mut |id, _| {
            order.push(id)
        });
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn max_param_diff_with_matches_network_method() {
        let a = presets::mlp(&[4, 5, 2], 2);
        let b = presets::mlp(&[4, 5, 2], 3);
        let via_trait = a.max_param_diff_with(&b);
        let via_inherent = a.max_param_diff(&b);
        assert_eq!(via_trait, via_inherent);
    }
}
