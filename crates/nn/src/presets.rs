//! Ready-made trainable networks for the runtime experiments.
//!
//! These are *real* networks (actual forward/backward math), sized so that
//! the statistical experiments finish in CPU time. `cifar_quick` follows the
//! layer pattern of Caffe's `cifar10_quick` (conv/pool ×3 → fc → fc); the
//! `scaled` variant shrinks spatial dimensions and channel counts uniformly
//! while preserving the conv-heavy-compute / fc-heavy-parameters structure
//! that Poseidon's scheduling exploits.

use crate::layer::{Layer, TensorShape};
use crate::layers::{Conv2d, FullyConnected, MaxPool2d, ReLU};
use crate::network::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A multi-layer perceptron with ReLU between consecutive FC layers.
///
/// `sizes` lists feature widths including input and output, e.g.
/// `&[784, 256, 10]` builds 784→256→10.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn mlp(sizes: &[usize], seed: u64) -> Network {
    assert!(
        sizes.len() >= 2,
        "an MLP needs at least input and output sizes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new(TensorShape::flat(sizes[0]));
    for (i, pair) in sizes.windows(2).enumerate() {
        net.push(Box::new(FullyConnected::new(
            format!("fc{}", i + 1),
            pair[0],
            pair[1],
            &mut rng,
        )));
        if i + 2 < sizes.len() {
            net.push(Box::new(ReLU::new(
                format!("relu{}", i + 1),
                TensorShape::flat(pair[1]),
            )));
        }
    }
    net
}

/// Caffe's `cifar10_quick` shape on full 3×32×32 inputs.
pub fn cifar_quick(classes: usize, seed: u64) -> Network {
    cifar_quick_scaled(TensorShape::new(3, 32, 32), 32, classes, seed)
}

/// A scaled `cifar10_quick`: three conv+pool stages then two FC layers.
///
/// `base_channels` controls the width (Caffe's original uses 32). The input
/// spatial size must be divisible by 8 (three 2× poolings).
///
/// # Panics
///
/// Panics if the spatial size is not divisible by 8.
pub fn cifar_quick_scaled(
    input: TensorShape,
    base_channels: usize,
    classes: usize,
    seed: u64,
) -> Network {
    assert!(
        input.h.is_multiple_of(8) && input.w.is_multiple_of(8),
        "spatial size {} not divisible by 8",
        input
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let c = base_channels;
    let mut net = Network::new(input);

    let conv1 = Conv2d::new("conv1", input, c, 5, 1, 2, &mut rng);
    let s1 = conv1.output_shape();
    net.push(Box::new(conv1));
    net.push(Box::new(ReLU::new("relu1", s1)));
    let pool1 = MaxPool2d::new("pool1", s1, 2, 2);
    let s1p = pool1.output_shape();
    net.push(Box::new(pool1));

    let conv2 = Conv2d::new("conv2", s1p, c, 5, 1, 2, &mut rng);
    let s2 = conv2.output_shape();
    net.push(Box::new(conv2));
    net.push(Box::new(ReLU::new("relu2", s2)));
    let pool2 = MaxPool2d::new("pool2", s2, 2, 2);
    let s2p = pool2.output_shape();
    net.push(Box::new(pool2));

    let conv3 = Conv2d::new("conv3", s2p, 2 * c, 5, 1, 2, &mut rng);
    let s3 = conv3.output_shape();
    net.push(Box::new(conv3));
    net.push(Box::new(ReLU::new("relu3", s3)));
    let pool3 = MaxPool2d::new("pool3", s3, 2, 2);
    let s3p = pool3.output_shape();
    net.push(Box::new(pool3));

    net.push(Box::new(FullyConnected::new(
        "ip1",
        s3p.len(),
        2 * c,
        &mut rng,
    )));
    net.push(Box::new(FullyConnected::new(
        "ip2",
        2 * c,
        classes,
        &mut rng,
    )));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::SoftmaxCrossEntropy;
    use poseidon_tensor::Matrix;

    #[test]
    fn mlp_structure() {
        let net = mlp(&[10, 20, 5], 1);
        assert_eq!(net.num_layers(), 3); // fc, relu, fc
        assert_eq!(net.num_params(), 10 * 20 + 20 + 20 * 5 + 5);
        assert_eq!(net.trainable_layers(), vec![0, 2]);
    }

    #[test]
    fn cifar_quick_matches_caffe_param_count() {
        let net = cifar_quick(10, 1);
        assert_eq!(net.num_params(), 145_578);
    }

    #[test]
    fn scaled_variant_shrinks() {
        let small = cifar_quick_scaled(TensorShape::new(3, 16, 16), 16, 10, 1);
        assert!(small.num_params() < 145_578 / 3);
        // Forward/backward runs end to end.
        let mut net = small;
        let x = Matrix::filled(2, 3 * 16 * 16, 0.1);
        let y = net.forward(&x);
        assert_eq!(y.cols(), 10);
        let out = SoftmaxCrossEntropy.evaluate(&y, &[0, 1]);
        net.backward(&out.grad);
    }

    #[test]
    fn cifar_quick_ends_in_two_fc_layers() {
        let net = cifar_quick(10, 2);
        let trainable = net.trainable_layers();
        let last = trainable[trainable.len() - 1];
        let second_last = trainable[trainable.len() - 2];
        assert!(
            net.layer(last).sufficient_factors().is_none(),
            "no backward yet"
        );
        assert_eq!(net.layer(last).name(), "ip2");
        assert_eq!(net.layer(second_last).name(), "ip1");
    }

    #[test]
    #[should_panic(expected = "not divisible by 8")]
    fn bad_spatial_size_panics() {
        let _ = cifar_quick_scaled(TensorShape::new(3, 20, 20), 8, 10, 1);
    }
}
