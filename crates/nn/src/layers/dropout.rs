//! Inverted dropout.

use crate::layer::{Layer, LayerKind, TensorShape};
use poseidon_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation needs
/// no rescaling.
///
/// The mask stream is seeded, so distributed replicas that construct their
/// dropout layers from the same seed draw identical masks — keeping the
/// synchronous-equivalence property of the runtime intact.
pub struct Dropout {
    name: String,
    shape: TensorShape,
    p: f32,
    rng: StdRng,
    mask: Option<Matrix>,
    training: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(name: impl Into<String>, shape: TensorShape, p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0,1), got {p}"
        );
        Self {
            name: name.into(),
            shape,
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
            training: true,
        }
    }

    /// Switches between training (masking) and evaluation (identity) mode.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Stateless
    }

    fn output_shape(&self) -> TensorShape {
        self.shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.shape.len(),
            "{}: bad input size",
            self.name
        );
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Matrix::zeros(input.rows(), input.cols());
        for v in mask.as_mut_slice() {
            if self.rng.gen::<f32>() < keep {
                *v = scale;
            }
        }
        let mut out = input.clone();
        for (o, &m) in out.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *o *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                assert_eq!(grad_out.shape(), mask.shape(), "grad shape mismatch");
                let mut grad_in = grad_out.clone();
                for (g, &m) in grad_in.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *g *= m;
                }
                grad_in
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new("drop", TensorShape::flat(8), 0.5, 1);
        d.set_training(false);
        let x = Matrix::filled(2, 8, 3.0);
        assert_eq!(d.forward(&x), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut d = Dropout::new("drop", TensorShape::flat(4), 0.0, 1);
        let x = Matrix::filled(1, 4, 2.0);
        assert_eq!(d.forward(&x), x);
    }

    #[test]
    fn surviving_activations_are_scaled() {
        let mut d = Dropout::new("drop", TensorShape::flat(1000), 0.5, 2);
        let y = d.forward(&Matrix::filled(1, 1000, 1.0));
        let kept = y.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 400 && kept < 600, "kept {kept} of 1000 at p=0.5");
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expected value preserved approximately.
        let mean = y.sum() / 1000.0;
        assert!(
            (mean - 1.0).abs() < 0.15,
            "inverted scaling keeps the mean: {mean}"
        );
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new("drop", TensorShape::flat(100), 0.3, 3);
        let y = d.forward(&Matrix::filled(1, 100, 1.0));
        let gin = d.backward(&Matrix::filled(1, 100, 1.0));
        for (a, b) in y.as_slice().iter().zip(gin.as_slice()) {
            assert_eq!(a, b, "gradient must pass exactly where activations passed");
        }
    }

    #[test]
    fn masks_are_deterministic_in_seed() {
        let run = |seed| {
            let mut d = Dropout::new("drop", TensorShape::flat(64), 0.5, seed);
            d.forward(&Matrix::filled(1, 64, 1.0))
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn full_drop_rejected() {
        let _ = Dropout::new("drop", TensorShape::flat(2), 1.0, 1);
    }
}
