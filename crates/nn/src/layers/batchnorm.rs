//! Batch normalization (Ioffe & Szegedy) — used by the ResNet/Inception
//! family the paper evaluates.

use crate::layer::{Layer, LayerKind, ParamBlock, TensorShape};
use poseidon_tensor::Matrix;

/// Per-channel batch normalization over `batch × spatial` statistics.
///
/// Training mode normalises with the current minibatch's statistics and
/// maintains running estimates; evaluation mode normalises with the running
/// estimates. The trainable scale `γ` lives in the parameter block's weight
/// column (`C × 1`) and the shift `β` in its bias row, so the layer
/// synchronises through the standard PS path (its updates are tiny and
/// indecomposable — [`LayerKind::Convolutional`] for scheme purposes, exactly
/// how the descriptor zoo classifies `Norm` layers).
pub struct BatchNorm {
    name: String,
    shape: TensorShape,
    eps: f32,
    momentum: f32,
    params: ParamBlock,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    training: bool,
    // Cached forward state for backward.
    cache: Option<Cache>,
}

struct Cache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
    batch: usize,
}

impl BatchNorm {
    /// Creates a batch-norm layer over activations of `shape` with `γ = 1`,
    /// `β = 0`, `ε = 1e-5` and running-stat momentum 0.9.
    pub fn new(name: impl Into<String>, shape: TensorShape) -> Self {
        let c = shape.c;
        let mut params = ParamBlock::new(c, 1);
        params.weights.map_inplace(|_| 1.0);
        Self {
            name: name.into(),
            shape,
            eps: 1e-5,
            momentum: 0.9,
            params,
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            training: true,
            cache: None,
        }
    }

    /// Switches between minibatch statistics (training) and running
    /// statistics (evaluation).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// The running mean estimate per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running variance estimate per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    fn spatial(&self) -> usize {
        self.shape.h * self.shape.w
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolutional
    }

    fn output_shape(&self) -> TensorShape {
        self.shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.shape.len(),
            "{}: bad input size",
            self.name
        );
        let batch = input.rows();
        let c = self.shape.c;
        let sp = self.spatial();
        let n = (batch * sp) as f32;

        let (mean, var) = if self.training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for s in 0..batch {
                let row = input.row(s);
                for ch in 0..c {
                    for i in 0..sp {
                        mean[ch] += row[ch * sp + i];
                    }
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            for s in 0..batch {
                let row = input.row(s);
                for ch in 0..c {
                    for i in 0..sp {
                        let d = row[ch * sp + i] - mean[ch];
                        var[ch] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= n;
            }
            // Update running statistics.
            for ch in 0..c {
                self.running_mean[ch] =
                    self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * mean[ch];
                self.running_var[ch] =
                    self.momentum * self.running_var[ch] + (1.0 - self.momentum) * var[ch];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Matrix::zeros(batch, input.cols());
        let mut out = Matrix::zeros(batch, input.cols());
        for s in 0..batch {
            let row = input.row(s);
            for ch in 0..c {
                let g = self.params.weights[(ch, 0)];
                let b = self.params.bias[(0, ch)];
                for i in 0..sp {
                    let xh = (row[ch * sp + i] - mean[ch]) * inv_std[ch];
                    x_hat[(s, ch * sp + i)] = xh;
                    out[(s, ch * sp + i)] = g * xh + b;
                }
            }
        }
        self.cache = Some(Cache {
            x_hat,
            inv_std,
            batch,
        });
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let batch = cache.batch;
        assert_eq!(grad_out.rows(), batch, "batch size mismatch");
        let c = self.shape.c;
        let sp = self.spatial();
        let n = (batch * sp) as f32;

        // dβ = Σ dy; dγ = Σ dy·x̂.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for s in 0..batch {
            let g = grad_out.row(s);
            for ch in 0..c {
                for i in 0..sp {
                    let idx = ch * sp + i;
                    dbeta[ch] += g[idx];
                    dgamma[ch] += g[idx] * cache.x_hat[(s, idx)];
                }
            }
        }
        for ch in 0..c {
            self.params.grad_weights[(ch, 0)] = dgamma[ch];
            self.params.grad_bias[(0, ch)] = dbeta[ch];
        }

        // dx = γ/σ · (dy − mean(dy) − x̂ · mean(dy·x̂))   [training-mode stats]
        let mut grad_in = Matrix::zeros(batch, grad_out.cols());
        for ch in 0..c {
            let g = self.params.weights[(ch, 0)];
            let mean_dy = dbeta[ch] / n;
            let mean_dyxh = dgamma[ch] / n;
            let scale = g * cache.inv_std[ch];
            for s in 0..batch {
                for i in 0..sp {
                    let idx = ch * sp + i;
                    grad_in[(s, idx)] =
                        scale * (grad_out[(s, idx)] - mean_dy - cache.x_hat[(s, idx)] * mean_dyxh);
                }
            }
        }
        grad_in
    }

    fn params(&self) -> Option<&ParamBlock> {
        Some(&self.params)
    }

    fn params_mut(&mut self) -> Option<&mut ParamBlock> {
        Some(&mut self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_input(batch: usize, shape: TensorShape, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(batch, shape.len());
        poseidon_tensor::init::gaussian(&mut m, 1.5, 2.0, &mut StdRng::seed_from_u64(seed));
        m
    }

    #[test]
    fn training_output_is_normalized_per_channel() {
        let shape = TensorShape::new(2, 4, 4);
        let mut bn = BatchNorm::new("bn", shape);
        let x = random_input(8, shape, 1);
        let y = bn.forward(&x);
        let sp = 16;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..8 {
                for i in 0..sp {
                    vals.push(y[(s, ch * sp + i)]);
                }
            }
            let n = vals.len() as f32;
            let mean: f32 = vals.iter().sum::<f32>() / n;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let shape = TensorShape::flat(3);
        let mut bn = BatchNorm::new("bn", shape);
        bn.params_mut().unwrap().weights = Matrix::from_vec(3, 1, vec![2.0, 1.0, 0.5]);
        bn.params_mut().unwrap().bias = Matrix::from_vec(1, 3, vec![1.0, -1.0, 0.0]);
        let x = random_input(16, shape, 2);
        let y = bn.forward(&x);
        // Channel 0: std 2, mean 1.
        let col: Vec<f32> = (0..16).map(|s| y[(s, 0)]).collect();
        let mean: f32 = col.iter().sum::<f32>() / 16.0;
        let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
        assert!((mean - 1.0).abs() < 1e-4);
        assert!((var - 4.0).abs() < 0.05);
    }

    #[test]
    fn gradients_match_numeric_differentiation() {
        let shape = TensorShape::new(1, 2, 2);
        let mut bn = BatchNorm::new("bn", shape);
        bn.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![1.3]);
        bn.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![0.2]);
        let x = random_input(3, shape, 3);
        // Fix running-stat updates out of the picture by using a fresh layer
        // per probe (forward mutates running stats but not batch stats math).
        let loss = |bn: &mut BatchNorm, x: &Matrix| -> f32 {
            let y = bn.forward(x);
            // Non-uniform loss so the gradient isn't killed by mean-subtraction.
            y.as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * v * (i as f32 + 1.0) * 0.1)
                .sum()
        };
        let y = bn.forward(&x);
        let grad_out = {
            let mut g = Matrix::zeros(3, 4);
            for (i, gv) in g.as_mut_slice().iter_mut().enumerate() {
                *gv = 2.0 * y.as_slice()[i] * (i as f32 + 1.0) * 0.1;
            }
            g
        };
        let gin = bn.backward(&grad_out);
        let dgamma = bn.params().unwrap().grad_weights[(0, 0)];
        let dbeta = bn.params().unwrap().grad_bias[(0, 0)];

        let eps = 1e-2f32;
        // dγ numeric.
        {
            let mut p = BatchNorm::new("bn", shape);
            p.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![1.3 + eps]);
            p.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![0.2]);
            let up = loss(&mut p, &x);
            let mut m = BatchNorm::new("bn", shape);
            m.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![1.3 - eps]);
            m.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![0.2]);
            let dn = loss(&mut m, &x);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (dgamma - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dgamma {dgamma} vs numeric {numeric}"
            );
        }
        // dβ numeric.
        {
            let mut p = BatchNorm::new("bn", shape);
            p.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![1.3]);
            p.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![0.2 + eps]);
            let up = loss(&mut p, &x);
            let mut m = BatchNorm::new("bn", shape);
            m.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![1.3]);
            m.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![0.2 - eps]);
            let dn = loss(&mut m, &x);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (dbeta - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dbeta {dbeta} vs numeric {numeric}"
            );
        }
        // dx numeric (spot check).
        for idx in [0usize, 5, 11] {
            let (s, i) = (idx / 4, idx % 4);
            let mut xp = x.clone();
            xp[(s, i)] += eps;
            let mut xm = x.clone();
            xm[(s, i)] -= eps;
            let up = loss(&mut BatchNorm::with_params(shape, 1.3, 0.2), &xp);
            let dn = loss(&mut BatchNorm::with_params(shape, 1.3, 0.2), &xm);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (gin[(s, i)] - numeric).abs() < 0.08 * (1.0 + numeric.abs()),
                "dx[{s},{i}] {} vs numeric {numeric}",
                gin[(s, i)]
            );
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let shape = TensorShape::flat(2);
        let mut bn = BatchNorm::new("bn", shape);
        // Train on data with mean ~5 so running stats move that way.
        let mut x = Matrix::filled(32, 2, 5.0);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v += (i % 7) as f32 * 0.1;
        }
        for _ in 0..50 {
            bn.forward(&x);
        }
        assert!(
            bn.running_mean()[0] > 4.0,
            "running mean {:?}",
            bn.running_mean()
        );
        bn.set_training(false);
        // Inputs near the running mean normalise to near zero.
        let y = bn.forward(&Matrix::filled(1, 2, 5.3));
        assert!(y.as_slice().iter().all(|v| v.abs() < 2.0));
        // And eval mode must not move the running stats.
        let before = bn.running_mean().to_vec();
        bn.forward(&Matrix::filled(1, 2, 100.0));
        assert_eq!(bn.running_mean(), &before[..]);
    }

    #[test]
    fn param_block_holds_gamma_and_beta() {
        let bn = BatchNorm::new("bn", TensorShape::new(8, 2, 2));
        let p = bn.params().unwrap();
        assert_eq!(p.weights.shape(), (8, 1));
        assert_eq!(p.bias.shape(), (1, 8));
        assert_eq!(p.num_params(), 16);
        assert!(
            p.weights.as_slice().iter().all(|&g| g == 1.0),
            "gamma init 1"
        );
    }

    impl BatchNorm {
        /// Test helper: a fresh layer with scalar γ/β (single channel).
        fn with_params(shape: TensorShape, gamma: f32, beta: f32) -> Self {
            let mut bn = BatchNorm::new("bn", shape);
            bn.params_mut().unwrap().weights = Matrix::from_vec(1, 1, vec![gamma]);
            bn.params_mut().unwrap().bias = Matrix::from_vec(1, 1, vec![beta]);
            bn
        }
    }
}
