//! Fully-connected layer — the layer class whose gradients decompose into
//! sufficient factors.

use crate::layer::{Layer, LayerKind, ParamBlock, TensorShape};
use crate::parallel;
use poseidon_tensor::{Matrix, SfBatch, SufficientFactor};
use rand::Rng;

/// A dense layer `y = W·x + b` with weights of shape `out × in`.
///
/// Over a batch the weight gradient is `Σₖ δₖ·xₖᵀ`, i.e. a sum of per-sample
/// rank-1 terms — exactly the structure sufficient-factor broadcasting
/// exploits (Section 2.1 of the paper). After each `backward` call the
/// factors `(δₖ, xₖ)` of that batch are available via
/// [`Layer::sufficient_factors`].
pub struct FullyConnected {
    name: String,
    in_features: usize,
    out_features: usize,
    params: ParamBlock,
    /// Input of the last forward pass (needed for both grads and SFs).
    cached_input: Option<Matrix>,
    /// Output gradient of the last backward pass (the `u` factors).
    cached_delta: Option<Matrix>,
}

impl FullyConnected {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut params = ParamBlock::new(out_features, in_features);
        poseidon_tensor::init::xavier(&mut params.weights, in_features, out_features, rng);
        Self {
            name: name.into(),
            in_features,
            out_features,
            params,
            cached_input: None,
            cached_delta: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for FullyConnected {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::FullyConnected
    }

    fn output_shape(&self) -> TensorShape {
        TensorShape::flat(self.out_features)
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_features,
            "{}: input has {} features, expected {}",
            self.name,
            input.cols(),
            self.in_features
        );
        // y = x · Wᵀ + b, rows are samples; sample rows fan out across
        // compute threads. Each output element folds its dot product in the
        // same order regardless of the row partition, so the result is
        // bitwise identical at every thread count.
        let k = input.rows();
        let width = self.out_features;
        let mut out = Matrix::zeros(k, width);
        let weights = &self.params.weights;
        let bias = &self.params.bias;
        parallel::par_row_chunks(k, width, out.as_mut_slice(), |range, chunk| {
            input.matmul_nt_rows_into(weights, range.clone(), chunk);
            for i in 0..range.len() {
                let row = &mut chunk[i * width..(i + 1) * width];
                for (o, &b) in row.iter_mut().zip(bias.row(0)) {
                    *o += b;
                }
            }
        });
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.rows(), input.rows(), "batch size mismatch");
        assert_eq!(grad_out.cols(), self.out_features, "grad width mismatch");

        // ∂L/∂W = δᵀ · x  (out × in), parallel over weight rows. Each
        // element sums over samples in ascending order whatever the
        // partition, keeping gradients thread-count independent.
        let mut gw = Matrix::zeros(self.out_features, self.in_features);
        parallel::par_row_chunks(
            self.out_features,
            self.in_features,
            gw.as_mut_slice(),
            |range, chunk| grad_out.matmul_tn_rows_into(input, range, chunk),
        );

        // ∂L/∂b = column sums of δ (cheap; kept serial).
        let mut gb = Matrix::zeros(1, self.out_features);
        for r in 0..grad_out.rows() {
            for (g, &d) in gb.row_mut(0).iter_mut().zip(grad_out.row(r)) {
                *g += d;
            }
        }

        // ∂L/∂x = δ · W  (K × in), parallel over sample rows.
        let weights = &self.params.weights;
        let mut grad_in = Matrix::zeros(grad_out.rows(), self.in_features);
        parallel::par_row_chunks(
            grad_out.rows(),
            self.in_features,
            grad_in.as_mut_slice(),
            |range, chunk| grad_out.matmul_rows_into(weights, range, chunk),
        );

        self.params.grad_weights = gw;
        self.params.grad_bias = gb;
        self.cached_delta = Some(grad_out.clone());
        grad_in
    }

    fn params(&self) -> Option<&ParamBlock> {
        Some(&self.params)
    }

    fn params_mut(&mut self) -> Option<&mut ParamBlock> {
        Some(&mut self.params)
    }

    fn sufficient_factors(&self) -> Option<SfBatch> {
        let delta = self.cached_delta.as_ref()?;
        let input = self.cached_input.as_ref()?;
        let mut batch = SfBatch::new();
        for k in 0..delta.rows() {
            batch.push(SufficientFactor::new(
                delta.row(k).to_vec(),
                input.row(k).to_vec(),
            ));
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(inf: usize, outf: usize) -> FullyConnected {
        FullyConnected::new("fc", inf, outf, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut fc = layer(2, 2);
        fc.params_mut().unwrap().weights = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        fc.params_mut().unwrap().bias = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = fc.forward(&x);
        // y0 = 1+2+0.5 = 3.5, y1 = 3+4-0.5 = 6.5
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_numeric_differentiation() {
        let mut fc = layer(3, 2);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        // Loss = sum of outputs, so grad_out = ones.
        let ones = Matrix::filled(2, 2, 1.0);
        fc.forward(&x);
        fc.backward(&ones);
        let analytic = fc.params().unwrap().grad_weights.clone();

        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let orig = fc.params().unwrap().weights[(r, c)];
                fc.params_mut().unwrap().weights[(r, c)] = orig + eps;
                let up = fc.forward(&x).sum();
                fc.params_mut().unwrap().weights[(r, c)] = orig - eps;
                let dn = fc.forward(&x).sum();
                fc.params_mut().unwrap().weights[(r, c)] = orig;
                let numeric = (up - dn) / (2.0 * eps);
                assert!(
                    (analytic[(r, c)] - numeric).abs() < 1e-2,
                    "dW[{r},{c}] analytic {} vs numeric {numeric}",
                    analytic[(r, c)]
                );
            }
        }
    }

    #[test]
    fn bias_gradient_is_column_sum_of_delta() {
        let mut fc = layer(2, 3);
        let x = Matrix::filled(4, 2, 1.0);
        fc.forward(&x);
        let delta = Matrix::from_vec(
            4,
            3,
            vec![1.0, 0.0, 2.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
        );
        fc.backward(&delta);
        assert_eq!(fc.params().unwrap().grad_bias.as_slice(), &[3.0, 2.0, 3.0]);
    }

    #[test]
    fn sufficient_factors_reconstruct_exact_weight_gradient() {
        let mut fc = layer(5, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Matrix::zeros(6, 5);
        let mut d = Matrix::zeros(6, 4);
        poseidon_tensor::init::gaussian(&mut x, 0.0, 1.0, &mut rng);
        poseidon_tensor::init::gaussian(&mut d, 0.0, 1.0, &mut rng);
        fc.forward(&x);
        fc.backward(&d);
        let sfs = fc.sufficient_factors().unwrap();
        assert_eq!(sfs.len(), 6, "one factor pair per sample");
        let rebuilt = sfs.reconstruct();
        let direct = &fc.params().unwrap().grad_weights;
        assert!(rebuilt.max_abs_diff(direct) < 1e-4);

        // The bias gradient is the sum of the u factors.
        let mut bias = [0.0f32; 4];
        for sf in sfs.factors() {
            for (b, &u) in bias.iter_mut().zip(&sf.u) {
                *b += u;
            }
        }
        for (i, &b) in bias.iter().enumerate() {
            assert!((b - fc.params().unwrap().grad_bias[(0, i)]).abs() < 1e-4);
        }
    }

    #[test]
    fn grad_input_matches_numeric_differentiation() {
        let mut fc = layer(3, 2);
        let x = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.1]);
        fc.forward(&x);
        let gin = fc.backward(&Matrix::filled(1, 2, 1.0));
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let up = fc.forward(&xp).sum();
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let dn = fc.forward(&xm).sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!((gin[(0, c)] - numeric).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut fc = layer(2, 2);
        fc.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn kind_and_shape_metadata() {
        let fc = layer(8, 3);
        assert_eq!(fc.kind(), LayerKind::FullyConnected);
        assert_eq!(fc.output_shape(), TensorShape::flat(3));
        assert_eq!(fc.params().unwrap().num_params(), 8 * 3 + 3);
        assert_eq!(fc.name(), "fc");
    }
}
