//! Max pooling.

use crate::layer::{Layer, LayerKind, TensorShape};
use crate::layers::conv::conv_out_dim;
use poseidon_tensor::Matrix;

/// 2-D max pooling with a square window.
///
/// Stores the argmax index of every output cell during `forward` and routes
/// the gradient back through it in `backward`.
pub struct MaxPool2d {
    name: String,
    in_shape: TensorShape,
    out_shape: TensorShape,
    k: usize,
    stride: usize,
    /// Flat input index chosen for each (sample-major) output cell.
    argmax: Vec<usize>,
    batch: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with a `k×k` window and the given stride.
    ///
    /// # Panics
    ///
    /// Panics if the output would be empty.
    pub fn new(name: impl Into<String>, in_shape: TensorShape, k: usize, stride: usize) -> Self {
        let ho = conv_out_dim(in_shape.h, k, stride, 0);
        let wo = conv_out_dim(in_shape.w, k, stride, 0);
        assert!(ho > 0 && wo > 0, "pooling output is empty");
        Self {
            name: name.into(),
            in_shape,
            out_shape: TensorShape::new(in_shape.c, ho, wo),
            k,
            stride,
            argmax: Vec::new(),
            batch: 0,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Stateless
    }

    fn output_shape(&self) -> TensorShape {
        self.out_shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_shape.len(),
            "{}: bad input size",
            self.name
        );
        let TensorShape { c, h, w } = self.in_shape;
        let (ho, wo) = (self.out_shape.h, self.out_shape.w);
        let batch = input.rows();
        let mut out = Matrix::zeros(batch, self.out_shape.len());
        self.argmax = vec![0; batch * self.out_shape.len()];
        self.batch = batch;
        for s in 0..batch {
            let sample = input.row(s);
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.k {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                let idx = ch * h * w + iy * w + ix;
                                if sample[idx] > best {
                                    best = sample[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let ocell = ch * ho * wo + oy * wo + ox;
                        out[(s, ocell)] = best;
                        self.argmax[s * self.out_shape.len() + ocell] = best_idx;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.rows(), self.batch, "batch size mismatch");
        assert_eq!(grad_out.cols(), self.out_shape.len(), "grad width mismatch");
        let mut grad_in = Matrix::zeros(self.batch, self.in_shape.len());
        for s in 0..self.batch {
            for ocell in 0..self.out_shape.len() {
                let src = self.argmax[s * self.out_shape.len() + ocell];
                grad_in[(s, src)] += grad_out[(s, ocell)];
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maximum() {
        let mut p = MaxPool2d::new("pool", TensorShape::new(1, 4, 4), 2, 2);
        let x = Matrix::from_vec(
            1,
            16,
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn gradient_routes_to_argmax_only() {
        let mut p = MaxPool2d::new("pool", TensorShape::new(1, 2, 2), 2, 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 2.0]);
        p.forward(&x);
        let gin = p.backward(&Matrix::filled(1, 1, 7.0));
        assert_eq!(gin.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn channels_pool_independently() {
        let mut p = MaxPool2d::new("pool", TensorShape::new(2, 2, 2), 2, 2);
        let x = Matrix::from_vec(1, 8, vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0]);
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 8.0]);
        assert_eq!(p.output_shape(), TensorShape::new(2, 1, 1));
    }

    #[test]
    fn overlapping_windows_duplicate_gradient() {
        // 3x3 input, 2x2 window, stride 1 → 2x2 output; centre of a uniform
        // input can win multiple windows depending on scan order.
        let mut p = MaxPool2d::new("pool", TensorShape::new(1, 3, 3), 2, 1);
        let x = Matrix::from_vec(1, 9, vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0]);
        p.forward(&x);
        let gin = p.backward(&Matrix::filled(1, 4, 1.0));
        assert_eq!(gin[(0, 4)], 4.0, "centre wins all four windows");
        assert_eq!(gin.sum(), 4.0);
    }

    #[test]
    fn stateless_kind() {
        let p = MaxPool2d::new("pool", TensorShape::new(1, 4, 4), 2, 2);
        assert_eq!(p.kind(), LayerKind::Stateless);
        assert!(p.params().is_none());
    }
}
