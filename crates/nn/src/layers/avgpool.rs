//! Average pooling (used by GoogLeNet/Inception/ResNet heads).

use crate::layer::{Layer, LayerKind, TensorShape};
use crate::layers::conv::conv_out_dim;
use poseidon_tensor::Matrix;

/// 2-D average pooling with a square window.
///
/// Gradient distributes uniformly over the window (each input cell of a
/// window receives `grad / window_cells`, counting only in-bounds cells so
/// edge windows are true averages).
pub struct AvgPool2d {
    name: String,
    in_shape: TensorShape,
    out_shape: TensorShape,
    k: usize,
    stride: usize,
    batch: usize,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with a `k×k` window and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if the output would be empty.
    pub fn new(name: impl Into<String>, in_shape: TensorShape, k: usize, stride: usize) -> Self {
        let ho = conv_out_dim(in_shape.h, k, stride, 0);
        let wo = conv_out_dim(in_shape.w, k, stride, 0);
        assert!(ho > 0 && wo > 0, "pooling output is empty");
        Self {
            name: name.into(),
            in_shape,
            out_shape: TensorShape::new(in_shape.c, ho, wo),
            k,
            stride,
            batch: 0,
        }
    }

    /// Global average pooling over the whole spatial extent.
    pub fn global(name: impl Into<String>, in_shape: TensorShape) -> Self {
        let k = in_shape.h.max(in_shape.w);
        Self::new(name, in_shape, k, k.max(1))
    }

    fn window_cells(&self, oy: usize, ox: usize) -> usize {
        let h = (oy * self.stride + self.k).min(self.in_shape.h) - oy * self.stride;
        let w = (ox * self.stride + self.k).min(self.in_shape.w) - ox * self.stride;
        h * w
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Stateless
    }

    fn output_shape(&self) -> TensorShape {
        self.out_shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_shape.len(),
            "{}: bad input size",
            self.name
        );
        let TensorShape { c, h, w } = self.in_shape;
        let (ho, wo) = (self.out_shape.h, self.out_shape.w);
        self.batch = input.rows();
        let mut out = Matrix::zeros(self.batch, self.out_shape.len());
        for s in 0..self.batch {
            let sample = input.row(s);
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = 0.0f32;
                        for ky in 0..self.k {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                acc += sample[ch * h * w + iy * w + ix];
                            }
                        }
                        out[(s, ch * ho * wo + oy * wo + ox)] =
                            acc / self.window_cells(oy, ox) as f32;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.rows(), self.batch, "batch size mismatch");
        assert_eq!(grad_out.cols(), self.out_shape.len(), "grad width mismatch");
        let TensorShape { c, h, w } = self.in_shape;
        let (ho, wo) = (self.out_shape.h, self.out_shape.w);
        let mut grad_in = Matrix::zeros(self.batch, self.in_shape.len());
        for s in 0..self.batch {
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let g = grad_out[(s, ch * ho * wo + oy * wo + ox)]
                            / self.window_cells(oy, ox) as f32;
                        for ky in 0..self.k {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                grad_in[(s, ch * h * w + iy * w + ix)] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_each_window() {
        let mut p = AvgPool2d::new("avg", TensorShape::new(1, 2, 2), 2, 2);
        let y = p.forward(&Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 6.0]));
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn global_pool_collapses_spatial_dims() {
        let mut p = AvgPool2d::global("gap", TensorShape::new(2, 3, 3));
        assert_eq!(p.output_shape(), TensorShape::new(2, 1, 1));
        let x = Matrix::from_vec(1, 18, (0..18).map(|v| v as f32).collect());
        let y = p.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 13.0]);
    }

    #[test]
    fn gradient_distributes_uniformly() {
        let mut p = AvgPool2d::new("avg", TensorShape::new(1, 2, 2), 2, 2);
        p.forward(&Matrix::filled(1, 4, 1.0));
        let gin = p.backward(&Matrix::filled(1, 1, 8.0));
        assert_eq!(gin.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_matches_numeric_differentiation() {
        let mut p = AvgPool2d::new("avg", TensorShape::new(1, 4, 4), 2, 2);
        let x = Matrix::from_vec(1, 16, (0..16).map(|v| (v as f32).sin()).collect());
        p.forward(&x);
        let gin = p.backward(&Matrix::filled(1, 4, 1.0));
        let eps = 1e-3f32;
        for i in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp[(0, i)] += eps;
            let mut xm = x.clone();
            xm[(0, i)] -= eps;
            let numeric = (p.forward(&xp).sum() - p.forward(&xm).sum()) / (2.0 * eps);
            assert!((gin[(0, i)] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn edge_windows_use_true_cell_counts() {
        // 3x3 input, 2x2 window, stride 2: windows of 4, 2, 2 and 1 cells.
        let mut p = AvgPool2d::new("avg", TensorShape::new(1, 3, 3), 2, 2);
        let x = Matrix::filled(1, 9, 6.0);
        let y = p.forward(&x);
        assert!(
            y.as_slice().iter().all(|&v| (v - 6.0).abs() < 1e-6),
            "constant input must stay constant under true averaging: {:?}",
            y.as_slice()
        );
    }

    #[test]
    fn is_stateless() {
        let p = AvgPool2d::new("avg", TensorShape::new(1, 4, 4), 2, 2);
        assert_eq!(p.kind(), LayerKind::Stateless);
        assert!(p.params().is_none());
        assert!(p.sufficient_factors().is_none());
    }
}
