//! 2-D convolution implemented via im2col + GEMM (the same lowering Caffe
//! uses, which is also why conv gradients are "indecomposable and sparse"
//! from the communication architecture's point of view — they always travel
//! via the parameter server).

use crate::layer::{Layer, LayerKind, ParamBlock, TensorShape};
use crate::parallel;
use poseidon_tensor::Matrix;
use rand::Rng;
use std::ops::Range;

/// A 2-D convolution layer with square kernels, zero padding and stride.
///
/// Weights are stored as `c_out × (c_in·kh·kw)`; an input batch is a
/// `K × (c_in·h·w)` matrix and the output a `K × (c_out·h_out·w_out)` matrix,
/// both row-major with channel-major sample layout.
pub struct Conv2d {
    name: String,
    in_shape: TensorShape,
    out_shape: TensorShape,
    c_out: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    params: ParamBlock,
    cached_input: Option<Matrix>,
}

impl Conv2d {
    /// Creates a convolution over `in_shape` with `c_out` square `k×k`
    /// filters, the given stride and symmetric zero padding.
    ///
    /// # Panics
    ///
    /// Panics if the configuration produces an empty output.
    pub fn new(
        name: impl Into<String>,
        in_shape: TensorShape,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(stride >= 1, "stride must be >= 1");
        let h_out = conv_out_dim(in_shape.h, k, stride, pad);
        let w_out = conv_out_dim(in_shape.w, k, stride, pad);
        assert!(h_out > 0 && w_out > 0, "convolution output is empty");
        let fan_in = in_shape.c * k * k;
        let mut params = ParamBlock::new(c_out, fan_in);
        poseidon_tensor::init::xavier(&mut params.weights, fan_in, c_out * k * k, rng);
        Self {
            name: name.into(),
            in_shape,
            out_shape: TensorShape::new(c_out, h_out, w_out),
            c_out,
            kh: k,
            kw: k,
            stride,
            pad,
            params,
            cached_input: None,
        }
    }

    /// The input shape this layer expects.
    pub fn input_shape(&self) -> TensorShape {
        self.in_shape
    }

    /// Lowers one sample into the caller's patch matrix
    /// (`(h_out·w_out) × (c_in·kh·kw)`). Every element is written — padding
    /// positions get an explicit zero — so the scratch matrix can be reused
    /// across samples without clearing.
    fn im2col_into(&self, sample: &[f32], patches: &mut Matrix) {
        let TensorShape { c, h, w } = self.in_shape;
        let (ho, wo) = (self.out_shape.h, self.out_shape.w);
        debug_assert_eq!(patches.shape(), (ho * wo, c * self.kh * self.kw));
        for oy in 0..ho {
            for ox in 0..wo {
                let prow = patches.row_mut(oy * wo + ox);
                let mut idx = 0;
                for ch in 0..c {
                    let chan = &sample[ch * h * w..(ch + 1) * h * w];
                    for ky in 0..self.kh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        for kx in 0..self.kw {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            prow[idx] =
                                if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                    chan[iy as usize * w + ix as usize]
                                } else {
                                    0.0
                                };
                            idx += 1;
                        }
                    }
                }
            }
        }
    }

    /// Scatters a patch-matrix gradient back to an input-sample gradient.
    fn col2im(&self, grad_patches: &Matrix, out: &mut [f32]) {
        let TensorShape { c, h, w } = self.in_shape;
        let (ho, wo) = (self.out_shape.h, self.out_shape.w);
        for oy in 0..ho {
            for ox in 0..wo {
                let prow = grad_patches.row(oy * wo + ox);
                let mut idx = 0;
                for ch in 0..c {
                    for ky in 0..self.kh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        for kx in 0..self.kw {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                out[ch * h * w + iy as usize * w + ix as usize] += prow[idx];
                            }
                            idx += 1;
                        }
                    }
                }
            }
        }
    }

    /// Backward pass over one contiguous sample range: fills the matching
    /// rows of `grad_in` and one weight/bias gradient partial per sample.
    /// All scratch (patch matrix, per-sample `G` view, `Gᵀ·W` product) is
    /// allocated once per chunk and reused across its samples.
    fn backward_chunk(
        &self,
        input: &Matrix,
        grad_out: &Matrix,
        range: Range<usize>,
        grad_in: &mut [f32],
        gw_parts: &mut [Matrix],
        gb_parts: &mut [Matrix],
    ) {
        let l = self.out_shape.h * self.out_shape.w;
        let d = self.in_shape.c * self.kh * self.kw;
        let in_len = self.in_shape.len();
        let mut patches = Matrix::zeros(l, d);
        let mut gmat = Matrix::zeros(self.c_out, l);
        let mut gp = Matrix::zeros(l, d);
        for (i, s) in range.enumerate() {
            self.im2col_into(input.row(s), &mut patches);
            // View this sample's output gradient as c_out × L.
            gmat.as_mut_slice().copy_from_slice(grad_out.row(s));
            // dW_s = G · P  (c_out × D).
            gmat.matmul_rows_into(&patches, 0..self.c_out, gw_parts[i].as_mut_slice());
            // db_s = row sums of G.
            for co in 0..self.c_out {
                gb_parts[i][(0, co)] = gmat.row(co).iter().sum::<f32>();
            }
            // dP = Gᵀ · W  (L × D), scattered back to the input.
            gp.clear();
            gmat.matmul_tn_rows_into(&self.params.weights, 0..l, gp.as_mut_slice());
            self.col2im(&gp, &mut grad_in[i * in_len..(i + 1) * in_len]);
        }
    }
}

/// Output spatial size of a convolution/pooling dimension (0 if the kernel
/// does not fit).
pub(crate) fn conv_out_dim(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if padded < k {
        return 0;
    }
    (padded - k) / stride + 1
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Convolutional
    }

    fn output_shape(&self) -> TensorShape {
        self.out_shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_shape.len(),
            "{}: input length {} != shape {}",
            self.name,
            input.cols(),
            self.in_shape
        );
        let k = input.rows();
        let l = self.out_shape.h * self.out_shape.w;
        let d = self.in_shape.c * self.kh * self.kw;
        let c_out = self.c_out;
        let mut out = Matrix::zeros(k, c_out * l);
        let this = &*self;
        parallel::par_row_chunks(k, c_out * l, out.as_mut_slice(), |range, chunk| {
            // Per-thread scratch, reused across this chunk's samples.
            let mut patches = Matrix::zeros(l, d);
            let mut y = vec![0.0f32; c_out * l];
            for (i, s) in range.enumerate() {
                this.im2col_into(input.row(s), &mut patches);
                y.fill(0.0);
                // (c_out × D) · (L × D)ᵀ = c_out × L
                this.params
                    .weights
                    .matmul_nt_rows_into(&patches, 0..c_out, &mut y);
                let orow = &mut chunk[i * c_out * l..(i + 1) * c_out * l];
                for co in 0..c_out {
                    let b = this.params.bias[(0, co)];
                    for p in 0..l {
                        orow[co * l + p] = y[co * l + p] + b;
                    }
                }
            }
        });
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let k = input.rows();
        let l = self.out_shape.h * self.out_shape.w;
        assert_eq!(grad_out.rows(), k, "batch size mismatch");
        assert_eq!(grad_out.cols(), self.c_out * l, "grad width mismatch");

        let d = self.in_shape.c * self.kh * self.kw;
        let in_len = self.in_shape.len();
        let mut grad_in = Matrix::zeros(k, in_len);
        // One weight/bias gradient partial per sample; reduced below in a
        // fixed tree over the sample index, so the result is independent of
        // how samples were spread across threads.
        let mut gw_parts: Vec<Matrix> = (0..k).map(|_| Matrix::zeros(self.c_out, d)).collect();
        let mut gb_parts: Vec<Matrix> = (0..k).map(|_| Matrix::zeros(1, self.c_out)).collect();

        let ranges = parallel::chunk_ranges(k, parallel::compute_threads());
        if ranges.len() <= 1 {
            self.backward_chunk(
                &input,
                grad_out,
                0..k,
                grad_in.as_mut_slice(),
                &mut gw_parts,
                &mut gb_parts,
            );
        } else {
            let this = &*self;
            crossbeam::thread::scope(|scope| {
                let mut gi_rest = grad_in.as_mut_slice();
                let mut gw_rest = gw_parts.as_mut_slice();
                let mut gb_rest = gb_parts.as_mut_slice();
                for range in ranges {
                    let (gi, tail) = gi_rest.split_at_mut(range.len() * in_len);
                    gi_rest = tail;
                    let (gw, tail) = gw_rest.split_at_mut(range.len());
                    gw_rest = tail;
                    let (gb, tail) = gb_rest.split_at_mut(range.len());
                    gb_rest = tail;
                    let input = &input;
                    scope.spawn(move |_| this.backward_chunk(input, grad_out, range, gi, gw, gb));
                }
            })
            .expect("compute thread panicked");
        }

        self.params.grad_weights =
            parallel::tree_reduce(gw_parts, |a, b| a.add_assign(b)).expect("batch is non-empty");
        self.params.grad_bias =
            parallel::tree_reduce(gb_parts, |a, b| a.add_assign(b)).expect("batch is non-empty");
        self.cached_input = Some(input);
        grad_in
    }

    fn params(&self) -> Option<&ParamBlock> {
        Some(&self.params)
    }

    fn params_mut(&mut self) -> Option<&mut ParamBlock> {
        Some(&mut self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(32, 5, 1, 2), 32);
        assert_eq!(conv_out_dim(32, 3, 2, 1), 16);
        assert_eq!(conv_out_dim(7, 7, 1, 0), 1);
        assert_eq!(conv_out_dim(4, 5, 1, 0), 0, "kernel larger than input");
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1 input channel, 1 output channel, 1x1 kernel with weight 1.
        let mut conv = Conv2d::new("c", TensorShape::new(1, 3, 3), 1, 1, 1, 0, &mut rng());
        conv.params_mut().unwrap().weights = Matrix::filled(1, 1, 1.0);
        conv.params_mut().unwrap().bias = Matrix::zeros(1, 1);
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn hand_computed_3x3_convolution() {
        // 1x3x3 input, one 3x3 filter of all ones, pad 1: centre output is the
        // sum of all 9 inputs.
        let mut conv = Conv2d::new("c", TensorShape::new(1, 3, 3), 1, 3, 1, 1, &mut rng());
        conv.params_mut().unwrap().weights = Matrix::filled(1, 9, 1.0);
        conv.params_mut().unwrap().bias = Matrix::zeros(1, 1);
        let x = Matrix::filled(1, 9, 1.0);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), (1, 9));
        assert_eq!(y[(0, 4)], 9.0, "centre sees the full 3x3 window");
        assert_eq!(y[(0, 0)], 4.0, "corner sees a 2x2 window");
        assert_eq!(y[(0, 1)], 6.0, "edge sees a 2x3 window");
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let mut conv = Conv2d::new("c", TensorShape::new(1, 2, 2), 2, 1, 1, 0, &mut rng());
        conv.params_mut().unwrap().weights = Matrix::zeros(2, 1);
        conv.params_mut().unwrap().bias = Matrix::from_vec(1, 2, vec![1.5, -2.0]);
        let y = conv.forward(&Matrix::zeros(1, 4));
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.0; 4]);
    }

    #[test]
    fn stride_downsamples() {
        let conv = Conv2d::new("c", TensorShape::new(3, 8, 8), 4, 3, 2, 1, &mut rng());
        assert_eq!(conv.output_shape(), TensorShape::new(4, 4, 4));
    }

    #[test]
    fn weight_gradient_matches_numeric_differentiation() {
        let mut conv = Conv2d::new("c", TensorShape::new(2, 4, 4), 3, 3, 1, 1, &mut rng());
        let mut x = Matrix::zeros(2, 32);
        poseidon_tensor::init::gaussian(&mut x, 0.0, 1.0, &mut rng());
        let gout = Matrix::filled(2, 3 * 16, 1.0);
        conv.forward(&x);
        conv.backward(&gout);
        let analytic = conv.params().unwrap().grad_weights.clone();

        let eps = 1e-2f32;
        // Spot-check a handful of weights.
        for &(r, c) in &[(0usize, 0usize), (1, 5), (2, 17), (0, 9)] {
            let orig = conv.params().unwrap().weights[(r, c)];
            conv.params_mut().unwrap().weights[(r, c)] = orig + eps;
            let up = conv.forward(&x).sum();
            conv.params_mut().unwrap().weights[(r, c)] = orig - eps;
            let dn = conv.forward(&x).sum();
            conv.params_mut().unwrap().weights[(r, c)] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (analytic[(r, c)] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dW[{r},{c}] analytic {} vs numeric {numeric}",
                analytic[(r, c)]
            );
        }
    }

    #[test]
    fn input_gradient_matches_numeric_differentiation() {
        let mut conv = Conv2d::new("c", TensorShape::new(1, 4, 4), 2, 3, 1, 1, &mut rng());
        let mut x = Matrix::zeros(1, 16);
        poseidon_tensor::init::gaussian(&mut x, 0.0, 1.0, &mut rng());
        conv.forward(&x);
        let gin = conv.backward(&Matrix::filled(1, 2 * 16, 1.0));
        let eps = 1e-2f32;
        for c in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let up = conv.forward(&xp).sum();
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let dn = conv.forward(&xm).sum();
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (gin[(0, c)] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "dX[{c}] analytic {} vs numeric {numeric}",
                gin[(0, c)]
            );
        }
    }

    #[test]
    fn conv_has_no_sufficient_factors() {
        let conv = Conv2d::new("c", TensorShape::new(1, 4, 4), 2, 3, 1, 1, &mut rng());
        assert!(conv.sufficient_factors().is_none());
        assert_eq!(conv.kind(), LayerKind::Convolutional);
    }

    #[test]
    fn param_count_formula() {
        let conv = Conv2d::new("c", TensorShape::new(3, 32, 32), 32, 5, 1, 2, &mut rng());
        // 32 filters of 3*5*5 weights + 32 biases = 2432 (CIFAR-quick conv1).
        assert_eq!(conv.params().unwrap().num_params(), 2432);
    }
}
