//! Concrete layer implementations.

pub mod avgpool;
pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod fc;
pub mod pool;
pub mod relu;

pub use avgpool::AvgPool2d;
pub use batchnorm::BatchNorm;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use fc::FullyConnected;
pub use pool::MaxPool2d;
pub use relu::ReLU;
