//! Rectified linear activation.

use crate::layer::{Layer, LayerKind, TensorShape};
use poseidon_tensor::Matrix;

/// Element-wise `max(0, x)`.
pub struct ReLU {
    name: String,
    shape: TensorShape,
    /// Mask of the last forward pass: 1.0 where the input was positive.
    mask: Option<Matrix>,
}

impl ReLU {
    /// Creates a ReLU over activations of the given shape.
    pub fn new(name: impl Into<String>, shape: TensorShape) -> Self {
        Self {
            name: name.into(),
            shape,
            mask: None,
        }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Stateless
    }

    fn output_shape(&self) -> TensorShape {
        self.shape
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.shape.len(),
            "{}: bad input size",
            self.name
        );
        let mut out = input.clone();
        let mut mask = Matrix::zeros(input.rows(), input.cols());
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            if *v > 0.0 {
                mask.as_mut_slice()[i] = 1.0;
            } else {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(grad_out.shape(), mask.shape(), "grad shape mismatch");
        let mut grad_in = grad_out.clone();
        for (g, &m) in grad_in.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *g *= m;
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = ReLU::new("relu", TensorShape::flat(4));
        let y = r.forward(&Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]));
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new("relu", TensorShape::flat(4));
        r.forward(&Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]));
        let gin = r.backward(&Matrix::filled(1, 4, 3.0));
        assert_eq!(gin.as_slice(), &[0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // The subgradient at exactly 0 is taken as 0 (Caffe convention).
        let mut r = ReLU::new("relu", TensorShape::flat(1));
        r.forward(&Matrix::zeros(1, 1));
        let gin = r.backward(&Matrix::filled(1, 1, 5.0));
        assert_eq!(gin[(0, 0)], 0.0);
    }

    #[test]
    fn is_parameter_free() {
        let r = ReLU::new("relu", TensorShape::flat(3));
        assert!(r.params().is_none());
        assert_eq!(r.kind(), LayerKind::Stateless);
        assert_eq!(r.output_shape(), TensorShape::flat(3));
    }
}
