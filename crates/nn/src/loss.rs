//! Softmax cross-entropy loss head.

use poseidon_tensor::Matrix;

/// Combined softmax + cross-entropy over a batch of logits.
///
/// Kept separate from the [`crate::layer::Layer`] trait because the loss head
/// needs labels, produces a scalar, and is where backpropagation *starts* —
/// it is the `bᴸ` of the paper's notation.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoftmaxCrossEntropy;

/// The result of a loss evaluation.
#[derive(Clone, Debug)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits (`K × classes`).
    pub grad: Matrix,
    /// Number of samples whose argmax logit equals the label.
    pub correct: usize,
}

impl SoftmaxCrossEntropy {
    /// Evaluates loss, gradient and top-1 accuracy for `logits` against
    /// integer `labels`.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the batch size or a label is out
    /// of range.
    pub fn evaluate(&self, logits: &Matrix, labels: &[usize]) -> LossOutput {
        let k = logits.rows();
        let classes = logits.cols();
        assert_eq!(labels.len(), k, "one label per sample required");
        let mut grad = Matrix::zeros(k, classes);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for (s, &label) in labels.iter().enumerate() {
            assert!(
                label < classes,
                "label {label} out of range ({classes} classes)"
            );
            let row = logits.row(s);
            // Numerically stable softmax.
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut denom = 0.0f32;
            for &v in row {
                denom += (v - max).exp();
            }
            let log_denom = denom.ln();
            loss += f64::from(log_denom - (row[label] - max));
            if logits.argmax_row(s) == label {
                correct += 1;
            }
            let grow = grad.row_mut(s);
            for (c, &v) in row.iter().enumerate() {
                let p = (v - max).exp() / denom;
                grow[c] = (p - if c == label { 1.0 } else { 0.0 }) / k as f32;
            }
        }
        LossOutput {
            loss: (loss / k as f64) as f32,
            grad,
            correct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Matrix::zeros(2, 4);
        let out = SoftmaxCrossEntropy.evaluate(&logits, &[0, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits[(0, 1)] = 10.0;
        let out = SoftmaxCrossEntropy.evaluate(&logits, &[1]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let out = SoftmaxCrossEntropy.evaluate(&logits, &[0, 2]);
        for s in 0..2 {
            let sum: f32 = out.grad.row(s).iter().sum();
            assert!(
                sum.abs() < 1e-6,
                "softmax grad rows must sum to 0, got {sum}"
            );
        }
    }

    #[test]
    fn gradient_matches_numeric_differentiation() {
        let logits = Matrix::from_vec(1, 3, vec![0.5, -0.2, 1.0]);
        let labels = [2usize];
        let head = SoftmaxCrossEntropy;
        let out = head.evaluate(&logits, &labels);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp[(0, c)] += eps;
            let mut lm = logits.clone();
            lm[(0, c)] -= eps;
            let numeric =
                (head.evaluate(&lp, &labels).loss - head.evaluate(&lm, &labels).loss) / (2.0 * eps);
            assert!(
                (out.grad[(0, c)] - numeric).abs() < 1e-3,
                "grad[{c}] {} vs numeric {numeric}",
                out.grad[(0, c)]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]);
        let out = SoftmaxCrossEntropy.evaluate(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = SoftmaxCrossEntropy.evaluate(&Matrix::zeros(1, 2), &[2]);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Matrix::from_vec(1, 3, vec![1000.0, -1000.0, 500.0]);
        let out = SoftmaxCrossEntropy.evaluate(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.grad.as_slice().iter().all(|g| g.is_finite()));
    }
}
