//! Branched (DAG) networks — inception-style modules with real training.
//!
//! The paper notes WFBP extends beyond chain networks because parameters only
//! depend on adjacent layers. [`GraphNetwork`] realises that: nodes form a
//! DAG (layers, channel-concatenations, one input), the backward pass visits
//! nodes in reverse-topological order, and each layer's gradient-done callback
//! fires while upstream branches are still computing — the same hook the
//! sequential [`crate::network::Network`] provides, so the distributed runtime
//! trains either through [`crate::model::Model`].

use crate::layer::{Layer, TensorShape};
use crate::model::Model;
use poseidon_tensor::Matrix;

enum Node {
    /// The (single) graph input.
    Input,
    /// A layer applied to one upstream node.
    Layer { layer: Box<dyn Layer>, input: usize },
    /// Channel-wise concatenation of upstream nodes (equal spatial dims).
    Concat {
        inputs: Vec<usize>,
        shape: TensorShape,
    },
}

/// A DAG of layers with one input and one output.
///
/// Node ids are assigned in insertion order and double as a topological
/// order: a node may only consume earlier nodes. Replicas built by the same
/// deterministic constructor share ids, which is what the distributed
/// runtime's slot addressing requires.
pub struct GraphNetwork {
    input_shape: TensorShape,
    nodes: Vec<Node>,
    output: Option<usize>,
    activations: Vec<Option<Matrix>>,
}

impl GraphNetwork {
    /// Creates a graph with the input node (id 0) in place.
    pub fn new(input_shape: TensorShape) -> Self {
        Self {
            input_shape,
            nodes: vec![Node::Input],
            output: None,
            activations: Vec::new(),
        }
    }

    /// The input node's id (always 0).
    pub fn input(&self) -> usize {
        0
    }

    /// The activation shape produced by node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_shape(&self, id: usize) -> TensorShape {
        match &self.nodes[id] {
            Node::Input => self.input_shape,
            Node::Layer { layer, .. } => layer.output_shape(),
            Node::Concat { shape, .. } => *shape,
        }
    }

    /// Appends a layer consuming node `input`; returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not an existing node (ids must be topological).
    pub fn add_layer(&mut self, input: usize, layer: Box<dyn Layer>) -> usize {
        assert!(
            input < self.nodes.len(),
            "input node {input} does not exist"
        );
        self.nodes.push(Node::Layer { layer, input });
        self.nodes.len() - 1
    }

    /// Appends a channel-concatenation of `inputs`; returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, references unknown nodes, or the inputs
    /// disagree on spatial dimensions.
    pub fn concat(&mut self, inputs: &[usize]) -> usize {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        for &i in inputs {
            assert!(i < self.nodes.len(), "input node {i} does not exist");
        }
        let first = self.node_shape(inputs[0]);
        let mut channels = 0;
        for &i in inputs {
            let s = self.node_shape(i);
            assert_eq!(
                (s.h, s.w),
                (first.h, first.w),
                "concat inputs must share spatial dims"
            );
            channels += s.c;
        }
        let shape = TensorShape::new(channels, first.h, first.w);
        self.nodes.push(Node::Concat {
            inputs: inputs.to_vec(),
            shape,
        });
        self.nodes.len() - 1
    }

    /// Declares node `id` as the graph output.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown, or any node is *not* an ancestor of the
    /// output (a disconnected layer would silently never synchronise).
    pub fn set_output(&mut self, id: usize) {
        assert!(id < self.nodes.len(), "output node {id} does not exist");
        // Reachability check backwards from the output.
        let mut needed = vec![false; self.nodes.len()];
        needed[id] = true;
        for n in (0..self.nodes.len()).rev() {
            if !needed[n] {
                continue;
            }
            match &self.nodes[n] {
                Node::Input => {}
                Node::Layer { input, .. } => needed[*input] = true,
                Node::Concat { inputs, .. } => {
                    for &i in inputs {
                        needed[i] = true;
                    }
                }
            }
        }
        if let Some(orphan) = needed.iter().position(|&n| !n) {
            panic!("node {orphan} does not feed the output — remove it or rewire");
        }
        self.output = Some(id);
    }
}

impl Model for GraphNetwork {
    fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    fn num_slots(&self) -> usize {
        self.nodes.len()
    }

    fn slot(&self, id: usize) -> Option<&dyn Layer> {
        match self.nodes.get(id)? {
            Node::Layer { layer, .. } => Some(layer.as_ref()),
            _ => None,
        }
    }

    fn slot_mut(&mut self, id: usize) -> Option<&mut dyn Layer> {
        match self.nodes.get_mut(id)? {
            Node::Layer { layer, .. } => Some(layer.as_mut()),
            _ => None,
        }
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_shape.len(),
            "input width {} != declared input shape {}",
            input.cols(),
            self.input_shape
        );
        let output = self.output.expect("set_output before forward");
        self.activations = (0..self.nodes.len()).map(|_| None).collect();
        self.activations[0] = Some(input.clone());
        for id in 1..self.nodes.len() {
            let act = match &mut self.nodes[id] {
                Node::Input => unreachable!("only node 0 is the input"),
                Node::Layer { layer, input } => {
                    let x = self.activations[*input]
                        .as_ref()
                        .expect("topological order guarantees the input is computed");
                    crate::probe::emit(crate::probe::ProbeEvent::ForwardBegin { layer: id });
                    let act = layer.forward(x);
                    crate::probe::emit(crate::probe::ProbeEvent::ForwardEnd { layer: id });
                    act
                }
                Node::Concat { inputs, shape } => {
                    let batch = self.activations[inputs[0]]
                        .as_ref()
                        .expect("computed")
                        .rows();
                    let mut out = Matrix::zeros(batch, shape.len());
                    let mut offset = 0usize;
                    for &i in inputs.iter() {
                        let part = self.activations[i].as_ref().expect("computed");
                        let width = part.cols();
                        for s in 0..batch {
                            out.row_mut(s)[offset..offset + width].copy_from_slice(part.row(s));
                        }
                        offset += width;
                    }
                    out
                }
            };
            self.activations[id] = Some(act);
        }
        self.activations[output].clone().expect("output computed")
    }

    fn backward_with(
        &mut self,
        grad_top: &Matrix,
        on_layer_done: &mut dyn FnMut(usize, &mut dyn Layer),
    ) {
        let output = self.output.expect("set_output before backward");
        assert!(
            !self.activations.is_empty(),
            "backward called before forward"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[output] = Some(grad_top.clone());
        for id in (1..self.nodes.len()).rev() {
            let Some(g) = grads[id].take() else {
                unreachable!("set_output verified every node feeds the output");
            };
            match &mut self.nodes[id] {
                Node::Input => unreachable!(),
                Node::Layer { layer, input } => {
                    crate::probe::emit(crate::probe::ProbeEvent::BackwardBegin { layer: id });
                    let gin = layer.backward(&g);
                    crate::probe::emit(crate::probe::ProbeEvent::BackwardEnd { layer: id });
                    on_layer_done(id, layer.as_mut());
                    accumulate(&mut grads[*input], gin);
                }
                Node::Concat { inputs, .. } => {
                    let mut offset = 0usize;
                    for &i in inputs.iter() {
                        let width = self.activations[i].as_ref().expect("forward ran").cols();
                        let mut part = Matrix::zeros(g.rows(), width);
                        for s in 0..g.rows() {
                            part.row_mut(s)
                                .copy_from_slice(&g.row(s)[offset..offset + width]);
                        }
                        offset += width;
                        accumulate(&mut grads[i], part);
                    }
                }
            }
        }
    }
}

fn accumulate(slot: &mut Option<Matrix>, g: Matrix) {
    match slot {
        Some(acc) => acc.add_assign(&g),
        None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, FullyConnected, MaxPool2d, ReLU};
    use crate::loss::SoftmaxCrossEntropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A two-branch inception-style block on 1×4×4 inputs ending in a 3-way
    /// classifier.
    fn branched(seed: u64) -> GraphNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = TensorShape::new(1, 4, 4);
        let mut g = GraphNetwork::new(shape);
        let stem = g.add_layer(
            g.input(),
            Box::new(Conv2d::new("stem", shape, 2, 3, 1, 1, &mut rng)),
        );
        let stem_shape = g.node_shape(stem);
        let b1 = g.add_layer(
            stem,
            Box::new(Conv2d::new("b1_1x1", stem_shape, 2, 1, 1, 0, &mut rng)),
        );
        let b2a = g.add_layer(
            stem,
            Box::new(Conv2d::new("b2_1x1", stem_shape, 2, 1, 1, 0, &mut rng)),
        );
        let b2 = g.add_layer(
            b2a,
            Box::new(Conv2d::new(
                "b2_3x3",
                g.node_shape(b2a),
                3,
                3,
                1,
                1,
                &mut rng,
            )),
        );
        let merged = g.concat(&[b1, b2]);
        let relu = g.add_layer(merged, Box::new(ReLU::new("relu", g.node_shape(merged))));
        let pool = g.add_layer(
            relu,
            Box::new(MaxPool2d::new("pool", g.node_shape(relu), 2, 2)),
        );
        let flat = g.node_shape(pool).len();
        let fc = g.add_layer(pool, Box::new(FullyConnected::new("fc", flat, 3, &mut rng)));
        g.set_output(fc);
        g
    }

    #[test]
    fn forward_produces_logits() {
        let mut g = branched(1);
        let x = Matrix::filled(2, 16, 0.3);
        let y = g.forward(&x);
        assert_eq!(y.shape(), (2, 3));
        assert_eq!(g.trainable_slots(), vec![1, 2, 3, 4, 8]);
    }

    #[test]
    fn concat_stacks_channels_in_input_order() {
        let shape = TensorShape::new(1, 1, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GraphNetwork::new(shape);
        // Two 1x1 "identity-able" convs on the same input.
        let a = g.add_layer(
            g.input(),
            Box::new(Conv2d::new("a", shape, 1, 1, 1, 0, &mut rng)),
        );
        let b = g.add_layer(
            g.input(),
            Box::new(Conv2d::new("b", shape, 1, 1, 1, 0, &mut rng)),
        );
        let m = g.concat(&[a, b]);
        g.set_output(m);
        // Force conv a to multiply by 2 and conv b by -1.
        g.slot_mut(a).unwrap().params_mut().unwrap().weights = Matrix::filled(1, 1, 2.0);
        g.slot_mut(a).unwrap().params_mut().unwrap().bias = Matrix::zeros(1, 1);
        g.slot_mut(b).unwrap().params_mut().unwrap().weights = Matrix::filled(1, 1, -1.0);
        g.slot_mut(b).unwrap().params_mut().unwrap().bias = Matrix::zeros(1, 1);
        let y = g.forward(&Matrix::from_vec(1, 2, vec![1.0, 3.0]));
        assert_eq!(y.as_slice(), &[2.0, 6.0, -1.0, -3.0]);
    }

    #[test]
    fn backward_callback_order_is_reverse_topological() {
        let mut g = branched(2);
        let x = Matrix::filled(2, 16, 0.1);
        let y = g.forward(&x);
        let out = SoftmaxCrossEntropy.evaluate(&y, &[0, 1]);
        let mut order = Vec::new();
        g.backward_with(&out.grad, &mut |id, _| order.push(id));
        // Layers only (no concat/pool-only callbacks for stateless? pool and
        // relu ARE layer nodes, so they appear too), strictly decreasing ids.
        for w in order.windows(2) {
            assert!(
                w[0] > w[1],
                "callback order must be reverse-topological: {order:?}"
            );
        }
        assert_eq!(*order.first().unwrap(), 8, "fc first");
        assert_eq!(*order.last().unwrap(), 1, "stem last");
    }

    #[test]
    fn fan_out_gradients_accumulate() {
        // Numeric gradient through the shared stem: both branches contribute.
        let mut g = branched(4);
        let mut x = Matrix::zeros(1, 16);
        poseidon_tensor::init::gaussian(&mut x, 0.0, 1.0, &mut StdRng::seed_from_u64(5));
        let labels = [2usize];
        let head = SoftmaxCrossEntropy;

        let y = g.forward(&x);
        let out = head.evaluate(&y, &labels);
        g.backward(&out.grad);
        let analytic = g.slot(1).unwrap().params().unwrap().grad_weights.clone();

        let eps = 1e-2f32;
        for &(r, c) in &[(0usize, 0usize), (1, 4), (0, 8)] {
            let orig = g.slot(1).unwrap().params().unwrap().weights[(r, c)];
            g.slot_mut(1).unwrap().params_mut().unwrap().weights[(r, c)] = orig + eps;
            let up = head.evaluate(&g.forward(&x), &labels).loss;
            g.slot_mut(1).unwrap().params_mut().unwrap().weights[(r, c)] = orig - eps;
            let dn = head.evaluate(&g.forward(&x), &labels).loss;
            g.slot_mut(1).unwrap().params_mut().unwrap().weights[(r, c)] = orig;
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (analytic[(r, c)] - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "stem dW[{r},{c}] {} vs numeric {numeric}",
                analytic[(r, c)]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_branched_network() {
        let mut g = branched(6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = Matrix::zeros(6, 16);
        poseidon_tensor::init::gaussian(&mut x, 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let head = SoftmaxCrossEntropy;
        let first = head.evaluate(&g.forward(&x), &labels).loss;
        for _ in 0..80 {
            let out = head.evaluate(&g.forward(&x), &labels);
            g.backward(&out.grad);
            g.apply_own_grads(-0.3);
        }
        let last = head.evaluate(&g.forward(&x), &labels).loss;
        assert!(last < first * 0.3, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "does not feed the output")]
    fn disconnected_node_is_rejected() {
        let shape = TensorShape::flat(4);
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = GraphNetwork::new(shape);
        let a = g.add_layer(
            g.input(),
            Box::new(FullyConnected::new("a", 4, 2, &mut rng)),
        );
        let _orphan = g.add_layer(
            g.input(),
            Box::new(FullyConnected::new("b", 4, 2, &mut rng)),
        );
        g.set_output(a);
    }

    #[test]
    #[should_panic(expected = "share spatial dims")]
    fn concat_rejects_mismatched_spatial_dims() {
        let shape = TensorShape::new(1, 4, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = GraphNetwork::new(shape);
        let a = g.add_layer(
            g.input(),
            Box::new(Conv2d::new("a", shape, 1, 3, 1, 1, &mut rng)),
        );
        let b = g.add_layer(
            g.input(),
            Box::new(Conv2d::new("b", shape, 1, 3, 2, 1, &mut rng)),
        );
        let _ = g.concat(&[a, b]);
    }

    #[test]
    fn replicas_from_same_seed_are_identical() {
        let a = branched(11);
        let b = branched(11);
        assert_eq!(a.max_param_diff_with(&b), 0.0);
        let c = branched(12);
        assert!(a.max_param_diff_with(&c) > 0.0);
    }
}
