//! The sequential network container and the top-down backward traversal that
//! wait-free backpropagation hooks into.

use crate::layer::{Layer, TensorShape};
use poseidon_tensor::Matrix;

/// A sequential stack of layers (the paper's chain-like NN).
///
/// The central piece of the engine contract is [`Network::backward_with`]: it
/// runs the backward pass from the top layer down and invokes a callback the
/// instant each layer's parameter gradients are complete — before the layers
/// below have even started their backward computation. Poseidon's client
/// library schedules each layer's `Send` from that callback (Algorithm 2).
pub struct Network {
    input_shape: TensorShape,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network expecting inputs of `input_shape`.
    pub fn new(input_shape: TensorShape) -> Self {
        Self {
            input_shape,
            layers: Vec::new(),
        }
    }

    /// Appends a layer. Layers must be pushed bottom-up.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Builder-style [`Self::push`].
    pub fn with(mut self, layer: Box<dyn Layer>) -> Self {
        self.push(layer);
        self
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// Immutable access to layer `l` (0 = bottom).
    pub fn layer(&self, l: usize) -> &dyn Layer {
        self.layers[l].as_ref()
    }

    /// Mutable access to layer `l`.
    pub fn layer_mut(&mut self, l: usize) -> &mut dyn Layer {
        self.layers[l].as_mut()
    }

    /// Indices of the layers that own parameters, bottom-up.
    pub fn trainable_layers(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&l| self.layers[l].params().is_some())
            .collect()
    }

    /// Total number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .filter_map(|l| l.params())
            .map(|p| p.num_params())
            .sum()
    }

    /// Feed-forward pass over a batch; returns the top-layer activations.
    ///
    /// # Panics
    ///
    /// Panics if `input` width does not match the declared input shape.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.input_shape.len(),
            "input width {} != declared input shape {}",
            input.cols(),
            self.input_shape
        );
        let mut act = input.clone();
        for (l, layer) in self.layers.iter_mut().enumerate() {
            crate::probe::emit(crate::probe::ProbeEvent::ForwardBegin { layer: l });
            act = layer.forward(&act);
            crate::probe::emit(crate::probe::ProbeEvent::ForwardEnd { layer: l });
        }
        act
    }

    /// Backward pass without a gradient callback.
    pub fn backward(&mut self, grad_top: &Matrix) {
        self.backward_with(grad_top, |_, _| {});
    }

    /// Backward pass from the top layer down.
    ///
    /// After each layer finishes computing its gradients, `on_layer_done(l,
    /// layer)` fires with the layer index and a mutable reference — this is
    /// the point at which that layer's gradients (and sufficient factors) are
    /// final, and where WFBP triggers the layer's communication. Layers below
    /// `l` have not yet run, mirroring `bᵢ(i < l)` still being pending in the
    /// paper's schedule.
    pub fn backward_with(
        &mut self,
        grad_top: &Matrix,
        mut on_layer_done: impl FnMut(usize, &mut dyn Layer),
    ) {
        let mut grad = grad_top.clone();
        for l in (0..self.layers.len()).rev() {
            crate::probe::emit(crate::probe::ProbeEvent::BackwardBegin { layer: l });
            grad = self.layers[l].backward(&grad);
            crate::probe::emit(crate::probe::ProbeEvent::BackwardEnd { layer: l });
            on_layer_done(l, self.layers[l].as_mut());
        }
    }

    /// Applies `params += alpha * own_grads` on every trainable layer
    /// (single-node SGD; the distributed runtimes update via syncers instead).
    pub fn apply_own_grads(&mut self, alpha: f32) {
        for layer in &mut self.layers {
            if let Some(p) = layer.params_mut() {
                p.apply_own_grads(alpha);
            }
        }
    }

    /// Zeroes all parameter gradients.
    pub fn clear_grads(&mut self) {
        for layer in &mut self.layers {
            if let Some(p) = layer.params_mut() {
                p.clear_grads();
            }
        }
    }

    /// Copies all parameters from `other` (same architecture required).
    ///
    /// # Panics
    ///
    /// Panics if the layer structure differs.
    pub fn copy_params_from(&mut self, other: &Network) {
        assert_eq!(
            self.num_layers(),
            other.num_layers(),
            "layer count mismatch"
        );
        for l in 0..self.layers.len() {
            match (self.layers[l].params_mut(), other.layers[l].params()) {
                (Some(mine), Some(theirs)) => {
                    mine.set_params(&theirs.weights, &theirs.bias);
                }
                (None, None) => {}
                _ => panic!("trainable-layer mismatch at layer {l}"),
            }
        }
    }

    /// Maximum absolute parameter difference to `other` (architecture must match).
    pub fn max_param_diff(&self, other: &Network) -> f32 {
        assert_eq!(
            self.num_layers(),
            other.num_layers(),
            "layer count mismatch"
        );
        let mut max = 0.0f32;
        for l in 0..self.layers.len() {
            if let (Some(a), Some(b)) = (self.layers[l].params(), other.layers[l].params()) {
                max = max.max(a.weights.max_abs_diff(&b.weights));
                max = max.max(a.bias.max_abs_diff(&b.bias));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{FullyConnected, ReLU};
    use crate::loss::SoftmaxCrossEntropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(TensorShape::flat(4))
            .with(Box::new(FullyConnected::new("fc1", 4, 8, &mut rng)))
            .with(Box::new(ReLU::new("relu1", TensorShape::flat(8))))
            .with(Box::new(FullyConnected::new("fc2", 8, 3, &mut rng)))
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut net = tiny_net(1);
        let x = Matrix::filled(5, 4, 0.5);
        let y = net.forward(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.trainable_layers(), vec![0, 2]);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn backward_callback_fires_top_down() {
        let mut net = tiny_net(2);
        let x = Matrix::filled(2, 4, 0.1);
        let y = net.forward(&x);
        let out = SoftmaxCrossEntropy.evaluate(&y, &[0, 1]);
        let mut order = Vec::new();
        net.backward_with(&out.grad, |l, _| order.push(l));
        assert_eq!(order, vec![2, 1, 0], "callback order must be top-down");
    }

    #[test]
    fn gradients_available_inside_callback() {
        let mut net = tiny_net(3);
        let x = Matrix::filled(2, 4, 0.2);
        let y = net.forward(&x);
        let out = SoftmaxCrossEntropy.evaluate(&y, &[1, 2]);
        net.backward_with(&out.grad, |_, layer| {
            if let Some(p) = layer.params() {
                assert!(
                    p.grad_weights.norm() > 0.0,
                    "{}: gradient must be complete when the callback fires",
                    layer.name()
                );
            }
        });
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = tiny_net(4);
        let x = Matrix::from_vec(
            3,
            4,
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        );
        let labels = [0usize, 1, 2];
        let head = SoftmaxCrossEntropy;
        let first = head.evaluate(&net.forward(&x), &labels).loss;
        for _ in 0..60 {
            let out = head.evaluate(&net.forward(&x), &labels);
            net.backward(&out.grad);
            net.apply_own_grads(-0.5);
        }
        let last = head.evaluate(&net.forward(&x), &labels).loss;
        assert!(
            last < first * 0.3,
            "loss {first} -> {last} should drop sharply"
        );
    }

    #[test]
    fn copy_params_makes_networks_identical() {
        let mut a = tiny_net(5);
        let b = tiny_net(6);
        assert!(a.max_param_diff(&b) > 0.0);
        a.copy_params_from(&b);
        assert_eq!(a.max_param_diff(&b), 0.0);
    }

    #[test]
    fn clear_grads_zeroes_all() {
        let mut net = tiny_net(7);
        let x = Matrix::filled(1, 4, 1.0);
        let y = net.forward(&x);
        let out = SoftmaxCrossEntropy.evaluate(&y, &[0]);
        net.backward(&out.grad);
        net.clear_grads();
        for &l in &net.trainable_layers() {
            assert_eq!(net.layer(l).params().unwrap().grad_weights.max_abs(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let mut net = tiny_net(8);
        net.forward(&Matrix::zeros(1, 5));
    }
}
