//! A layer-by-layer neural-network engine, model zoo and synthetic datasets.
//!
//! This crate substitutes for the computation engines the paper plugged
//! Poseidon into (Caffe and TensorFlow). It provides the *engine contract*
//! Poseidon needs:
//!
//! * a sequential container ([`network::Network`]) whose backward pass visits
//!   layers **top-down** and invokes a per-layer gradient callback the moment
//!   that layer's gradients are complete — the hook wait-free backpropagation
//!   (Algorithm 2, L5–L8 of the paper) schedules communication from;
//! * per-layer parameter blocks ([`layer::ParamBlock`]) that can be read,
//!   replaced and updated independently — the independence HybComm exploits;
//! * per-sample sufficient factors from fully-connected layers
//!   ([`layer::Layer::sufficient_factors`]), the payload of SFB.
//!
//! Two kinds of models live here:
//!
//! * **Trainable networks** (`layers`, `network`, `loss`, `sgd`) — real
//!   forward/backward math used by the threaded runtime for the statistical
//!   experiments (Figures 9b and 11) and the correctness tests.
//! * **Descriptor models** ([`zoo`]) — per-layer parameter counts, shapes and
//!   FLOP estimates for the paper's large networks (GoogLeNet, Inception-V3,
//!   VGG19, VGG19-22K, ResNet-152, AlexNet, CIFAR-10-quick), consumed by the
//!   cluster timing simulator for the throughput experiments.

pub mod data;
pub mod graph;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod network;
pub mod parallel;
pub mod presets;
pub mod probe;
pub mod sgd;
pub mod zoo;

pub use graph::GraphNetwork;
pub use layer::{Layer, LayerKind, ParamBlock, TensorShape};
pub use model::Model;
pub use network::Network;
