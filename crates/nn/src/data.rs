//! Synthetic datasets.
//!
//! The paper's datasets (CIFAR-10, ILSVRC12, ImageNet22K) are substituted by
//! a learnable synthetic classification task: each class is a random Gaussian
//! prototype "image" and samples are noisy copies of their class prototype.
//! The tensor shapes match the originals, so the systems measurements (bytes,
//! batch shapes) are faithful, and the task is genuinely learnable, so the
//! statistical experiments (Figures 9b, 11) compare convergence meaningfully.

use crate::layer::TensorShape;
use poseidon_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An in-memory labelled dataset of flattened sample tensors.
#[derive(Clone, Debug)]
pub struct Dataset {
    shape: TensorShape,
    samples: Matrix,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Generates a Gaussian-cluster dataset.
    ///
    /// Each of `classes` classes gets a prototype drawn from `N(0, 1)`;
    /// every sample is `prototype + N(0, noise²)` with a uniformly random
    /// class. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `count == 0`.
    pub fn gaussian_clusters(
        shape: TensorShape,
        classes: usize,
        count: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(
            classes > 0 && count > 0,
            "need at least one class and one sample"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = shape.len();
        let mut prototypes = Matrix::zeros(classes, d);
        poseidon_tensor::init::gaussian(&mut prototypes, 0.0, 1.0, &mut rng);

        let mut samples = Matrix::zeros(count, d);
        let mut labels = Vec::with_capacity(count);
        for s in 0..count {
            let label = rng.gen_range(0..classes);
            labels.push(label);
            let proto = prototypes.row(label).to_vec();
            let row = samples.row_mut(s);
            for (x, p) in row.iter_mut().zip(proto) {
                *x = p + noise * poseidon_tensor::init::standard_normal(&mut rng);
            }
        }
        Self {
            shape,
            samples,
            labels,
            classes,
        }
    }

    /// Sample tensor shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` iff the dataset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Extracts the minibatch of `batch` samples starting at `start`,
    /// wrapping around the end of the dataset.
    pub fn minibatch(&self, start: usize, batch: usize) -> (Matrix, Vec<usize>) {
        assert!(batch > 0, "empty minibatch");
        let mut x = Matrix::zeros(batch, self.shape.len());
        let mut y = Vec::with_capacity(batch);
        for i in 0..batch {
            let idx = (start + i) % self.len();
            x.row_mut(i).copy_from_slice(self.samples.row(idx));
            y.push(self.labels[idx]);
        }
        (x, y)
    }

    /// Splits off the first `n` samples into one dataset and the rest into
    /// another (train/test split sharing the same class prototypes).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n < len`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n > 0 && n < self.len(), "split point {n} out of range");
        let take = |from: usize, to: usize| {
            let mut samples = Matrix::zeros(to - from, self.shape.len());
            let mut labels = Vec::with_capacity(to - from);
            for i in from..to {
                samples
                    .row_mut(i - from)
                    .copy_from_slice(self.samples.row(i));
                labels.push(self.labels[i]);
            }
            Dataset {
                shape: self.shape,
                samples,
                labels,
                classes: self.classes,
            }
        };
        (take(0, n), take(n, self.len()))
    }

    /// Splits the dataset into `parts` contiguous, disjoint shards (data
    /// parallelism). Earlier shards get the remainder samples.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or `parts > len`.
    pub fn partition(&self, parts: usize) -> Vec<Dataset> {
        assert!(
            parts > 0 && parts <= self.len(),
            "bad partition count {parts}"
        );
        let base = self.len() / parts;
        let extra = self.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut offset = 0usize;
        for p in 0..parts {
            let size = base + usize::from(p < extra);
            let mut samples = Matrix::zeros(size, self.shape.len());
            let mut labels = Vec::with_capacity(size);
            for i in 0..size {
                samples
                    .row_mut(i)
                    .copy_from_slice(self.samples.row(offset + i));
                labels.push(self.labels[offset + i]);
            }
            out.push(Dataset {
                shape: self.shape,
                samples,
                labels,
                classes: self.classes,
            });
            offset += size;
        }
        out
    }

    /// The CIFAR-10 sample shape (`3×32×32`), 10 classes.
    pub fn cifar10_like(count: usize, seed: u64) -> Self {
        Self::gaussian_clusters(TensorShape::new(3, 32, 32), 10, count, 0.6, seed)
    }

    /// Generates a *spatially smooth* Gaussian-cluster image dataset.
    ///
    /// Class prototypes are low-resolution (`h/4 × w/4`) random patterns
    /// upsampled by nearest-neighbour to the full image size, so class
    /// information survives convolution and pooling — the variant the CNN
    /// experiments (Figures 9b and 11) train on. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spatial dimensions are not divisible by 4, or
    /// `classes == 0` or `count == 0`.
    pub fn smooth_clusters(
        shape: TensorShape,
        classes: usize,
        count: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(
            shape.h.is_multiple_of(4) && shape.w.is_multiple_of(4),
            "spatial size must divide by 4"
        );
        assert!(
            classes > 0 && count > 0,
            "need at least one class and one sample"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let (lh, lw) = (shape.h / 4, shape.w / 4);
        let d = shape.len();

        // Low-res prototypes, upsampled 4x nearest-neighbour.
        let mut prototypes = Matrix::zeros(classes, d);
        for cls in 0..classes {
            let proto = prototypes.row_mut(cls);
            for ch in 0..shape.c {
                let mut coarse = vec![0.0f32; lh * lw];
                for v in &mut coarse {
                    *v = poseidon_tensor::init::standard_normal(&mut rng);
                }
                for y in 0..shape.h {
                    for x in 0..shape.w {
                        proto[ch * shape.h * shape.w + y * shape.w + x] =
                            coarse[(y / 4) * lw + (x / 4)];
                    }
                }
            }
        }

        let mut samples = Matrix::zeros(count, d);
        let mut labels = Vec::with_capacity(count);
        for s in 0..count {
            let label = rng.gen_range(0..classes);
            labels.push(label);
            let proto = prototypes.row(label).to_vec();
            let row = samples.row_mut(s);
            for (x, p) in row.iter_mut().zip(proto) {
                *x = p + noise * poseidon_tensor::init::standard_normal(&mut rng);
            }
        }
        Self {
            shape,
            samples,
            labels,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = Dataset::gaussian_clusters(TensorShape::flat(8), 3, 50, 0.5, 9);
        let b = Dataset::gaussian_clusters(TensorShape::flat(8), 3, 50, 0.5, 9);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.samples, b.samples);
        let c = Dataset::gaussian_clusters(TensorShape::flat(8), 3, 50, 0.5, 10);
        assert_ne!(a.samples, c.samples, "different seed, different data");
    }

    #[test]
    fn minibatch_wraps_around() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(4), 2, 5, 0.1, 1);
        let (x, y) = d.minibatch(3, 4);
        assert_eq!(x.rows(), 4);
        assert_eq!(y.len(), 4);
        // Samples 3, 4, 0, 1.
        assert_eq!(x.row(2), d.samples.row(0));
        assert_eq!(y[2], d.labels[0]);
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(4), 3, 10, 0.1, 2);
        let parts = d.partition(3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 10);
        assert_eq!(parts[0].len(), 4, "remainder goes to early shards");
        assert_eq!(parts[1].len(), 3);
        // First sample of shard 1 is sample 4 of the original.
        assert_eq!(parts[1].samples.row(0), d.samples.row(4));
    }

    #[test]
    fn labels_are_in_range() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(4), 7, 100, 0.3, 3);
        assert!(d.labels.iter().all(|&l| l < 7));
        assert_eq!(d.classes(), 7);
    }

    #[test]
    fn cifar_like_shape() {
        let d = Dataset::cifar10_like(20, 1);
        assert_eq!(d.shape(), TensorShape::new(3, 32, 32));
        assert_eq!(d.classes(), 10);
        assert_eq!(d.len(), 20);
    }

    #[test]
    fn clusters_are_separable_by_a_linear_probe() {
        // Sanity: nearest-prototype classification should beat chance easily,
        // i.e. the task is learnable.
        let shape = TensorShape::flat(16);
        let d = Dataset::gaussian_clusters(shape, 4, 200, 0.3, 5);
        // Recompute class means from the data.
        let mut means = Matrix::zeros(4, 16);
        let mut counts = [0usize; 4];
        for s in 0..d.len() {
            let l = d.labels[s];
            counts[l] += 1;
            for (m, &x) in means.row_mut(l).iter_mut().zip(d.samples.row(s)) {
                *m += x;
            }
        }
        for (l, &count) in counts.iter().enumerate() {
            let inv = 1.0 / count.max(1) as f32;
            for m in means.row_mut(l) {
                *m *= inv;
            }
        }
        let mut correct = 0usize;
        for s in 0..d.len() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for l in 0..4 {
                let dist: f32 = means
                    .row(l)
                    .iter()
                    .zip(d.samples.row(s))
                    .map(|(m, x)| (m - x) * (m - x))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = l;
                }
            }
            correct += usize::from(best == d.labels[s]);
        }
        assert!(
            correct as f32 / d.len() as f32 > 0.9,
            "nearest-mean accuracy only {correct}/200"
        );
    }

    #[test]
    fn split_at_is_disjoint_and_complete() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(4), 2, 10, 0.1, 4);
        let (tr, te) = d.split_at(7);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.samples.row(0), d.samples.row(7));
        assert_eq!(tr.classes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_at_bounds_checked() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(4), 2, 10, 0.1, 4);
        let _ = d.split_at(10);
    }

    #[test]
    fn smooth_clusters_are_deterministic_and_shaped() {
        let a = Dataset::smooth_clusters(TensorShape::new(3, 16, 16), 5, 40, 0.3, 9);
        let b = Dataset::smooth_clusters(TensorShape::new(3, 16, 16), 5, 40, 0.3, 9);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.classes(), 5);
        assert_eq!(a.shape().len(), 768);
    }

    #[test]
    fn smooth_prototypes_are_blockwise_constant() {
        // With zero noise, every 4x4 block of a sample is constant.
        let d = Dataset::smooth_clusters(TensorShape::new(1, 8, 8), 2, 4, 0.0, 3);
        let s = d.samples.row(0);
        for by in 0..2 {
            for bx in 0..2 {
                let v = s[(by * 4) * 8 + bx * 4];
                for y in 0..4 {
                    for x in 0..4 {
                        assert_eq!(s[(by * 4 + y) * 8 + (bx * 4 + x)], v);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide by 4")]
    fn smooth_clusters_reject_odd_sizes() {
        let _ = Dataset::smooth_clusters(TensorShape::new(1, 6, 8), 2, 4, 0.1, 1);
    }

    #[test]
    #[should_panic(expected = "bad partition count")]
    fn over_partition_panics() {
        let d = Dataset::gaussian_clusters(TensorShape::flat(2), 2, 3, 0.1, 1);
        let _ = d.partition(4);
    }
}
