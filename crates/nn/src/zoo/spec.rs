//! Layer and model descriptor types.

/// What kind of parameters a descriptor layer owns — the property Algorithm 1
/// dispatches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecKind {
    /// Convolutional weights: indecomposable updates, always synchronised via
    /// the parameter server.
    Conv,
    /// Fully-connected weights of shape `m × n` (`m` outputs, `n` inputs):
    /// gradients decompose into `K` rank-1 sufficient factors.
    FullyConnected {
        /// Output features (gradient rows `M` in Table 1).
        m: usize,
        /// Input features (gradient columns `N` in Table 1).
        n: usize,
    },
    /// Normalisation parameters (batch norm scale/shift): tiny, via PS.
    Norm,
    /// No parameters (pooling, activation, concat...).
    Stateless,
}

/// One layer of a descriptor model.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    /// Unique layer name within the model.
    pub name: String,
    /// Parameter kind.
    pub kind: SpecKind,
    /// Trainable scalar count (weights + biases).
    pub params: u64,
    /// Forward FLOPs per sample (multiply-accumulate counted as 2).
    pub fwd_flops: u64,
    /// Backward FLOPs per sample (≈ 2× forward for parameterised layers:
    /// one GEMM for the weight gradient, one for the input gradient).
    pub bwd_flops: u64,
}

impl LayerSpec {
    /// `true` iff the layer has trainable parameters.
    pub fn is_trainable(&self) -> bool {
        self.params > 0
    }

    /// Bytes of a dense f32 copy of the parameters (one direction on the wire).
    pub fn param_bytes(&self) -> u64 {
        self.params * 4
    }

    /// The FC shape `(m, n)` if this is a fully-connected layer.
    pub fn fc_shape(&self) -> Option<(usize, usize)> {
        match self.kind {
            SpecKind::FullyConnected { m, n } => Some((m, n)),
            _ => None,
        }
    }
}

/// A full network descriptor plus the evaluation metadata of Table 3.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name as used in the paper.
    pub name: &'static str,
    /// Dataset the paper trained it on.
    pub dataset: &'static str,
    /// Per-GPU batch size from Table 3.
    pub default_batch: usize,
    /// Layers, bottom-up. Backward visits them in reverse.
    pub layers: Vec<LayerSpec>,
    /// Single-node throughput (images/sec) the paper measured for this model,
    /// used to calibrate the simulator's GPU speed. `None` if the paper gives
    /// no number; the simulator then derives time from FLOPs alone.
    pub paper_single_node_ips: Option<f64>,
}

impl ModelSpec {
    /// Total trainable scalars.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Trainable scalars living in FC layers.
    pub fn fc_params(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| matches!(l.kind, SpecKind::FullyConnected { .. }))
            .map(|l| l.params)
            .sum()
    }

    /// Fraction of parameters in FC layers (the paper quotes 91% for
    /// VGG19-22K).
    pub fn fc_fraction(&self) -> f64 {
        let total = self.total_params();
        if total == 0 {
            return 0.0;
        }
        self.fc_params() as f64 / total as f64
    }

    /// Total forward FLOPs per sample.
    pub fn fwd_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.fwd_flops).sum()
    }

    /// Total backward FLOPs per sample.
    pub fn bwd_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.bwd_flops).sum()
    }

    /// Indices of trainable layers, bottom-up.
    pub fn trainable_layers(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&i| self.layers[i].is_trainable())
            .collect()
    }

    /// Bytes of one dense copy of all parameters.
    pub fn param_bytes(&self) -> u64 {
        self.total_params() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc(m: usize, n: usize) -> LayerSpec {
        LayerSpec {
            name: format!("fc{m}x{n}"),
            kind: SpecKind::FullyConnected { m, n },
            params: (m * n + m) as u64,
            fwd_flops: (2 * m * n) as u64,
            bwd_flops: (4 * m * n) as u64,
        }
    }

    #[test]
    fn model_aggregates() {
        let spec = ModelSpec {
            name: "toy",
            dataset: "none",
            default_batch: 8,
            layers: vec![
                LayerSpec {
                    name: "conv".into(),
                    kind: SpecKind::Conv,
                    params: 100,
                    fwd_flops: 1000,
                    bwd_flops: 2000,
                },
                LayerSpec {
                    name: "pool".into(),
                    kind: SpecKind::Stateless,
                    params: 0,
                    fwd_flops: 10,
                    bwd_flops: 10,
                },
                fc(10, 20),
            ],
            paper_single_node_ips: None,
        };
        assert_eq!(spec.total_params(), 100 + 210);
        assert_eq!(spec.fc_params(), 210);
        assert!((spec.fc_fraction() - 210.0 / 310.0).abs() < 1e-12);
        assert_eq!(spec.fwd_flops(), 1410);
        assert_eq!(spec.trainable_layers(), vec![0, 2]);
        assert_eq!(spec.param_bytes(), 310 * 4);
    }

    #[test]
    fn fc_shape_extraction() {
        let l = fc(4096, 25088);
        assert_eq!(l.fc_shape(), Some((4096, 25088)));
        assert!(l.is_trainable());
        let p = LayerSpec {
            name: "pool".into(),
            kind: SpecKind::Stateless,
            params: 0,
            fwd_flops: 0,
            bwd_flops: 0,
        };
        assert_eq!(p.fc_shape(), None);
        assert!(!p.is_trainable());
    }
}
