//! A shape-tracking builder for descriptor models.
//!
//! Encodes the standard conv/FC parameter and FLOP formulas once so the model
//! definitions in [`super::models`] read like the architecture tables in the
//! original papers. Branchy modules (inception, residual blocks) are
//! *flattened*: on a single GPU branch computations serialise anyway, so a
//! flat layer list preserves both total parameters and total compute, and the
//! builder's [`SpecBuilder::set_shape`] rewinds the tracked shape to emit
//! sibling branches from a shared input.

use super::spec::{LayerSpec, SpecKind};
use crate::layer::TensorShape;

/// Incrementally builds a `Vec<LayerSpec>` while tracking the activation shape.
pub struct SpecBuilder {
    shape: TensorShape,
    layers: Vec<LayerSpec>,
}

impl SpecBuilder {
    /// Starts from the network input shape.
    pub fn new(input: TensorShape) -> Self {
        Self {
            shape: input,
            layers: Vec::new(),
        }
    }

    /// The current activation shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Overrides the tracked shape (used when flattening branches: rewind to
    /// the branch input, emit the branch, then `set_shape` to the concat
    /// output).
    pub fn set_shape(&mut self, shape: TensorShape) -> &mut Self {
        self.shape = shape;
        self
    }

    /// Adds a square convolution `c_out @ k×k / stride, pad`.
    pub fn conv(
        &mut self,
        name: &str,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> &mut Self {
        self.conv_grouped(name, c_out, k, k, stride, pad, pad, 1)
    }

    /// Adds a rectangular convolution (`kh × kw`), e.g. Inception-V3's 1×7.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_rect(
        &mut self,
        name: &str,
        c_out: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> &mut Self {
        self.conv_grouped(name, c_out, kh, kw, stride, pad_h, pad_w, 1)
    }

    /// Adds a grouped convolution (AlexNet's two-GPU groups).
    ///
    /// # Panics
    ///
    /// Panics if channel counts are not divisible by `groups` or the output
    /// would be empty.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        &mut self,
        name: &str,
        c_out: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
        groups: usize,
    ) -> &mut Self {
        let c_in = self.shape.c;
        assert!(
            groups >= 1 && c_in.is_multiple_of(groups) && c_out.is_multiple_of(groups),
            "{name}: groups {groups} must divide c_in {c_in} and c_out {c_out}"
        );
        let ho = out_dim(self.shape.h, kh, stride, pad_h);
        let wo = out_dim(self.shape.w, kw, stride, pad_w);
        assert!(ho > 0 && wo > 0, "{name}: empty convolution output");
        let weights = (c_in / groups) * kh * kw * c_out;
        let params = (weights + c_out) as u64;
        // 2 FLOPs per MAC; each output cell sees (c_in/groups)·kh·kw inputs.
        let fwd = 2 * weights as u64 * (ho * wo) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Conv,
            params,
            fwd_flops: fwd,
            bwd_flops: 2 * fwd,
        });
        self.shape = TensorShape::new(c_out, ho, wo);
        self
    }

    /// Adds a batch-norm / scale layer over the current channels.
    pub fn batchnorm(&mut self, name: &str) -> &mut Self {
        let c = self.shape.c;
        let act = self.shape.len() as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Norm,
            params: (2 * c) as u64,
            fwd_flops: 2 * act,
            bwd_flops: 4 * act,
        });
        self
    }

    /// Adds a parameter-free pooling layer with a `k×k` window.
    pub fn pool(&mut self, name: &str, k: usize, stride: usize, pad: usize) -> &mut Self {
        let ho = out_dim(self.shape.h, k, stride, pad);
        let wo = out_dim(self.shape.w, k, stride, pad);
        assert!(ho > 0 && wo > 0, "{name}: empty pooling output");
        let flops = (self.shape.c * ho * wo * k * k) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Stateless,
            params: 0,
            fwd_flops: flops,
            bwd_flops: flops,
        });
        self.shape = TensorShape::new(self.shape.c, ho, wo);
        self
    }

    /// Collapses the spatial dimensions with global average pooling.
    pub fn global_avgpool(&mut self, name: &str) -> &mut Self {
        let flops = self.shape.len() as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Stateless,
            params: 0,
            fwd_flops: flops,
            bwd_flops: flops,
        });
        self.shape = TensorShape::flat(self.shape.c);
        self
    }

    /// Adds a fully-connected layer to `out` features (flattens the current
    /// shape as input).
    pub fn fc(&mut self, name: &str, out: usize) -> &mut Self {
        let n = self.shape.len();
        let fwd = (2 * out * n) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::FullyConnected { m: out, n },
            params: (out * n + out) as u64,
            fwd_flops: fwd,
            bwd_flops: 2 * fwd,
        });
        self.shape = TensorShape::flat(out);
        self
    }

    /// Finishes, returning the layer list.
    pub fn build(self) -> Vec<LayerSpec> {
        self.layers
    }
}

fn out_dim(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if padded < k {
        return 0;
    }
    (padded - k) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_param_and_flop_formulas() {
        let mut b = SpecBuilder::new(TensorShape::new(3, 32, 32));
        b.conv("conv1", 32, 5, 1, 2);
        let layers = b.build();
        assert_eq!(layers[0].params, (3 * 5 * 5 * 32 + 32) as u64);
        // 32x32 output cells, 75 MACs each, 32 filters, 2 FLOPs per MAC.
        assert_eq!(layers[0].fwd_flops, 2 * 75 * 32 * 1024);
        assert_eq!(layers[0].bwd_flops, 2 * layers[0].fwd_flops);
    }

    #[test]
    fn shape_tracks_through_stack() {
        let mut b = SpecBuilder::new(TensorShape::new(3, 224, 224));
        b.conv("c1", 64, 7, 2, 3);
        assert_eq!(b.shape(), TensorShape::new(64, 112, 112));
        b.pool("p1", 3, 2, 1);
        assert_eq!(b.shape(), TensorShape::new(64, 56, 56));
        b.global_avgpool("gap");
        assert_eq!(b.shape(), TensorShape::flat(64));
        b.fc("fc", 1000);
        assert_eq!(b.shape(), TensorShape::flat(1000));
        let layers = b.build();
        assert_eq!(layers.last().unwrap().params, 64 * 1000 + 1000);
    }

    #[test]
    fn grouped_conv_halves_weights() {
        let mut a = SpecBuilder::new(TensorShape::new(96, 27, 27));
        a.conv("full", 256, 5, 1, 2);
        let mut g = SpecBuilder::new(TensorShape::new(96, 27, 27));
        g.conv_grouped("grouped", 256, 5, 5, 1, 2, 2, 2);
        let full = a.build()[0].params - 256;
        let half = g.build()[0].params - 256;
        assert_eq!(half * 2, full);
    }

    #[test]
    fn rect_conv_shape() {
        let mut b = SpecBuilder::new(TensorShape::new(768, 17, 17));
        b.conv_rect("c1x7", 128, 1, 7, 1, 0, 3);
        assert_eq!(b.shape(), TensorShape::new(128, 17, 17));
    }

    #[test]
    fn set_shape_enables_branches() {
        let mut b = SpecBuilder::new(TensorShape::new(192, 28, 28));
        let input = b.shape();
        b.conv("branch1", 64, 1, 1, 0);
        b.set_shape(input);
        b.conv("branch2a", 96, 1, 1, 0);
        b.conv("branch2b", 128, 3, 1, 1);
        b.set_shape(TensorShape::new(64 + 128, 28, 28)); // concat
        assert_eq!(b.shape().c, 192);
        assert_eq!(b.build().len(), 3);
    }

    #[test]
    fn batchnorm_params_are_two_per_channel() {
        let mut b = SpecBuilder::new(TensorShape::new(64, 56, 56));
        b.batchnorm("bn1");
        assert_eq!(b.build()[0].params, 128);
    }

    #[test]
    #[should_panic(expected = "empty convolution output")]
    fn oversized_kernel_panics() {
        let mut b = SpecBuilder::new(TensorShape::new(3, 4, 4));
        b.conv("bad", 8, 7, 1, 0);
    }
}
