//! Descriptor models of the paper's evaluation networks.
//!
//! The throughput experiments (Figures 5–10) don't need real math — they need
//! each network's *layer structure*: per-layer parameter counts (what goes on
//! the wire), FC shapes (what SFB can factor) and per-layer FLOPs (what the
//! calibrated GPU model turns into compute time). This module encodes the six
//! evaluation networks of Table 3 plus AlexNet (used in the paper's Section
//! 2.2 motivating example) layer by layer from their published architectures.
//!
//! Parameter totals are asserted against Table 3 in the tests; small
//! deviations from the paper's rounded numbers are documented per model.

mod builder;
mod models;
mod spec;

pub use builder::SpecBuilder;
pub use models::{
    alexnet, all_models, cifar10_quick, googlenet, inception_v3, resnet152, vgg19, vgg19_22k,
};
pub use spec::{LayerSpec, ModelSpec, SpecKind};
