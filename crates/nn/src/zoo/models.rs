//! The evaluation networks of the paper (Table 3) plus AlexNet.
//!
//! Per-model notes on how our parameter totals relate to the paper's rounded
//! numbers are in each constructor's doc comment and re-checked by tests.

use super::builder::SpecBuilder;
use super::spec::ModelSpec;
use crate::layer::TensorShape;

/// Caffe's `cifar10_quick` (paper: 145.6K parameters, batch 100).
///
/// conv 32@5×5 → pool → conv 32@5×5 → pool → conv 64@5×5 → pool →
/// fc 64 → fc 10. Parameter count matches the paper exactly (145,578).
pub fn cifar10_quick() -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 32, 32));
    b.conv("conv1", 32, 5, 1, 2)
        .pool("pool1", 3, 2, 1)
        .conv("conv2", 32, 5, 1, 2)
        .pool("pool2", 3, 2, 1)
        .conv("conv3", 64, 5, 1, 2)
        .pool("pool3", 3, 2, 1)
        .fc("ip1", 64)
        .fc("ip2", 10);
    ModelSpec {
        name: "CIFAR-10 quick",
        dataset: "CIFAR10",
        default_batch: 100,
        layers: b.build(),
        paper_single_node_ips: None,
    }
}

/// AlexNet (Krizhevsky et al.; paper Section 2.2 quotes 61.5M parameters).
///
/// Uses the original two-group convolutions; our total is 62.4M — the classic
/// "60M" round-off plus the LRN-free fc6 input (6×6×256).
pub fn alexnet() -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 227, 227));
    b.conv("conv1", 96, 11, 4, 0)
        .pool("pool1", 3, 2, 0)
        .conv_grouped("conv2", 256, 5, 5, 1, 2, 2, 2)
        .pool("pool2", 3, 2, 0)
        .conv("conv3", 384, 3, 1, 1)
        .conv_grouped("conv4", 384, 3, 3, 1, 1, 1, 2)
        .conv_grouped("conv5", 256, 3, 3, 1, 1, 1, 2)
        .pool("pool5", 3, 2, 0)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000);
    ModelSpec {
        name: "AlexNet",
        dataset: "ILSVRC12",
        default_batch: 256,
        layers: b.build(),
        paper_single_node_ips: None,
    }
}

/// Emits one GoogLeNet inception module (flattened branches).
///
/// `cfg = (#1×1, #3×3reduce, #3×3, #5×5reduce, #5×5, pool-proj)`.
fn inception(b: &mut SpecBuilder, name: &str, cfg: (usize, usize, usize, usize, usize, usize)) {
    let (c1, c3r, c3, c5r, c5, pp) = cfg;
    let input = b.shape();
    b.conv(&format!("{name}/1x1"), c1, 1, 1, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/3x3_reduce"), c3r, 1, 1, 0);
    b.conv(&format!("{name}/3x3"), c3, 3, 1, 1);
    b.set_shape(input);
    b.conv(&format!("{name}/5x5_reduce"), c5r, 1, 1, 0);
    b.conv(&format!("{name}/5x5"), c5, 5, 1, 2);
    b.set_shape(input);
    b.pool(&format!("{name}/pool"), 3, 1, 1);
    b.conv(&format!("{name}/pool_proj"), pp, 1, 1, 0);
    b.set_shape(TensorShape::new(c1 + c3 + c5 + pp, input.h, input.w));
}

/// GoogLeNet (Szegedy et al. 2015; paper Table 3: 5M parameters, batch 128).
///
/// 22 weighted layers, single thin FC classifier (1000×1024). The exact
/// deploy-network count (with biases, without the training-only auxiliary
/// classifiers) is 7.0M; the paper's "5M" is the original "12× fewer
/// parameters than AlexNet" approximation from Szegedy et al.
pub fn googlenet() -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 224, 224));
    b.conv("conv1/7x7_s2", 64, 7, 2, 3)
        .pool("pool1/3x3_s2", 3, 2, 1)
        .conv("conv2/3x3_reduce", 64, 1, 1, 0)
        .conv("conv2/3x3", 192, 3, 1, 1)
        .pool("pool2/3x3_s2", 3, 2, 1);
    inception(&mut b, "inception_3a", (64, 96, 128, 16, 32, 32));
    inception(&mut b, "inception_3b", (128, 128, 192, 32, 96, 64));
    b.pool("pool3/3x3_s2", 3, 2, 1);
    inception(&mut b, "inception_4a", (192, 96, 208, 16, 48, 64));
    inception(&mut b, "inception_4b", (160, 112, 224, 24, 64, 64));
    inception(&mut b, "inception_4c", (128, 128, 256, 24, 64, 64));
    inception(&mut b, "inception_4d", (112, 144, 288, 32, 64, 64));
    inception(&mut b, "inception_4e", (256, 160, 320, 32, 128, 128));
    b.pool("pool4/3x3_s2", 3, 2, 1);
    inception(&mut b, "inception_5a", (256, 160, 320, 32, 128, 128));
    inception(&mut b, "inception_5b", (384, 192, 384, 48, 128, 128));
    b.global_avgpool("pool5/7x7_s1");
    b.fc("loss3/classifier", 1000);
    ModelSpec {
        name: "GoogLeNet",
        dataset: "ILSVRC12",
        default_batch: 128,
        layers: b.build(),
        paper_single_node_ips: Some(257.0),
    }
}

/// Inception-A block at 35×35 (`pf` = pool-projection channels).
fn inception_a(b: &mut SpecBuilder, name: &str, pf: usize) {
    let input = b.shape();
    b.conv(&format!("{name}/1x1"), 64, 1, 1, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/5x5_reduce"), 48, 1, 1, 0);
    b.conv(&format!("{name}/5x5"), 64, 5, 1, 2);
    b.set_shape(input);
    b.conv(&format!("{name}/3x3dbl_reduce"), 64, 1, 1, 0);
    b.conv(&format!("{name}/3x3dbl_1"), 96, 3, 1, 1);
    b.conv(&format!("{name}/3x3dbl_2"), 96, 3, 1, 1);
    b.set_shape(input);
    b.pool(&format!("{name}/pool"), 3, 1, 1);
    b.conv(&format!("{name}/pool_proj"), pf, 1, 1, 0);
    b.set_shape(TensorShape::new(64 + 64 + 96 + pf, input.h, input.w));
}

/// Inception-C block at 17×17 with `c7` intermediate channels.
fn inception_c(b: &mut SpecBuilder, name: &str, c7: usize) {
    let input = b.shape();
    b.conv(&format!("{name}/1x1"), 192, 1, 1, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/7x7_reduce"), c7, 1, 1, 0);
    b.conv_rect(&format!("{name}/1x7"), c7, 1, 7, 1, 0, 3);
    b.conv_rect(&format!("{name}/7x1"), 192, 7, 1, 1, 3, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/7x7dbl_reduce"), c7, 1, 1, 0);
    b.conv_rect(&format!("{name}/7x1_2"), c7, 7, 1, 1, 3, 0);
    b.conv_rect(&format!("{name}/1x7_2"), c7, 1, 7, 1, 0, 3);
    b.conv_rect(&format!("{name}/7x1_3"), c7, 7, 1, 1, 3, 0);
    b.conv_rect(&format!("{name}/1x7_3"), 192, 1, 7, 1, 0, 3);
    b.set_shape(input);
    b.pool(&format!("{name}/pool"), 3, 1, 1);
    b.conv(&format!("{name}/pool_proj"), 192, 1, 1, 0);
    b.set_shape(TensorShape::new(768, input.h, input.w));
}

/// Inception-E block at 8×8.
fn inception_e(b: &mut SpecBuilder, name: &str) {
    let input = b.shape();
    b.conv(&format!("{name}/1x1"), 320, 1, 1, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/3x3_reduce"), 384, 1, 1, 0);
    let mid = b.shape();
    b.conv_rect(&format!("{name}/1x3"), 384, 1, 3, 1, 0, 1);
    b.set_shape(mid);
    b.conv_rect(&format!("{name}/3x1"), 384, 3, 1, 1, 1, 0);
    b.set_shape(input);
    b.conv(&format!("{name}/3x3dbl_reduce"), 448, 1, 1, 0);
    b.conv(&format!("{name}/3x3dbl"), 384, 3, 1, 1);
    let mid2 = b.shape();
    b.conv_rect(&format!("{name}/3x3dbl_1x3"), 384, 1, 3, 1, 0, 1);
    b.set_shape(mid2);
    b.conv_rect(&format!("{name}/3x3dbl_3x1"), 384, 3, 1, 1, 1, 0);
    b.set_shape(input);
    b.pool(&format!("{name}/pool"), 3, 1, 1);
    b.conv(&format!("{name}/pool_proj"), 192, 1, 1, 0);
    b.set_shape(TensorShape::new(2048, input.h, input.w));
}

/// Inception-V3 (Szegedy et al. 2016; paper Table 3: 27M parameters, batch 32).
///
/// Full stem + A/B/C/D/E blocks + the auxiliary classifier that is active
/// during training (which is what the paper's 27M includes: 23.9M main +
/// 3.4M aux).
pub fn inception_v3() -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 299, 299));
    b.conv("conv1_3x3_s2", 32, 3, 2, 0)
        .conv("conv2_3x3", 32, 3, 1, 0)
        .conv("conv3_3x3", 64, 3, 1, 1)
        .pool("pool1_3x3_s2", 3, 2, 0)
        .conv("conv4_1x1", 80, 1, 1, 0)
        .conv("conv5_3x3", 192, 3, 1, 0)
        .pool("pool2_3x3_s2", 3, 2, 0);
    inception_a(&mut b, "mixed_35a", 32);
    inception_a(&mut b, "mixed_35b", 64);
    inception_a(&mut b, "mixed_35c", 64);
    // Reduction B: 35×35 → 17×17.
    {
        let input = b.shape();
        b.conv("mixed_17a/3x3_s2", 384, 3, 2, 0);
        b.set_shape(input);
        b.conv("mixed_17a/3x3dbl_reduce", 64, 1, 1, 0);
        b.conv("mixed_17a/3x3dbl_1", 96, 3, 1, 1);
        b.conv("mixed_17a/3x3dbl_2_s2", 96, 3, 2, 0);
        b.set_shape(input);
        b.pool("mixed_17a/pool", 3, 2, 0);
        b.set_shape(TensorShape::new(768, 17, 17));
    }
    inception_c(&mut b, "mixed_17b", 128);
    inception_c(&mut b, "mixed_17c", 160);
    inception_c(&mut b, "mixed_17d", 160);
    inception_c(&mut b, "mixed_17e", 192);
    // Auxiliary classifier (training-time): avgpool5/3 → 1×1/128 → 5×5/768 → fc.
    {
        let input = b.shape();
        b.pool("aux/avgpool_5x5_s3", 5, 3, 0);
        b.conv("aux/conv_1x1", 128, 1, 1, 0);
        b.conv("aux/conv_5x5", 768, 5, 1, 0);
        b.fc("aux/fc", 1000);
        b.set_shape(input);
    }
    // Reduction D: 17×17 → 8×8.
    {
        let input = b.shape();
        b.conv("mixed_8a/3x3_reduce", 192, 1, 1, 0);
        b.conv("mixed_8a/3x3_s2", 320, 3, 2, 0);
        b.set_shape(input);
        b.conv("mixed_8a/7x7_reduce", 192, 1, 1, 0);
        b.conv_rect("mixed_8a/1x7", 192, 1, 7, 1, 0, 3);
        b.conv_rect("mixed_8a/7x1", 192, 7, 1, 1, 3, 0);
        b.conv("mixed_8a/3x3_s2b", 192, 3, 2, 0);
        b.set_shape(input);
        b.pool("mixed_8a/pool", 3, 2, 0);
        b.set_shape(TensorShape::new(1280, 8, 8));
    }
    inception_e(&mut b, "mixed_8b");
    inception_e(&mut b, "mixed_8c");
    b.global_avgpool("pool3_8x8_s1");
    b.fc("fc", 1000);
    ModelSpec {
        name: "Inception-V3",
        dataset: "ILSVRC12",
        default_batch: 32,
        layers: b.build(),
        paper_single_node_ips: Some(43.2),
    }
}

/// VGG19 with a configurable classifier width (1000 for ILSVRC12).
fn vgg19_with_classes(
    name: &'static str,
    dataset: &'static str,
    classes: usize,
    ips: Option<f64>,
) -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 224, 224));
    let stages: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];
    for (stage, &(width, convs)) in stages.iter().enumerate() {
        for i in 0..convs {
            b.conv(&format!("conv{}_{}", stage + 1, i + 1), width, 3, 1, 1);
        }
        b.pool(&format!("pool{}", stage + 1), 2, 2, 0);
    }
    b.fc("fc6", 4096).fc("fc7", 4096).fc("fc8", classes);
    ModelSpec {
        name,
        dataset,
        default_batch: 32,
        layers: b.build(),
        paper_single_node_ips: ips,
    }
}

/// VGG19 (Simonyan & Zisserman; paper Table 3: 143M parameters, batch 32).
///
/// Exact count 143.7M; 86% of the parameters live in the three FC layers.
pub fn vgg19() -> ModelSpec {
    vgg19_with_classes("VGG19", "ILSVRC12", 1000, Some(35.5))
}

/// VGG19-22K — VGG19 with a 21,841-way classifier for ImageNet22K (paper
/// Table 3: 229M parameters, batch 32; the three FC layers hold 91%).
pub fn vgg19_22k() -> ModelSpec {
    vgg19_with_classes("VGG19-22K", "ImageNet22K", 21_841, Some(34.6))
}

/// ResNet-152 (He et al.; paper Table 3: 60.2M parameters, batch 32).
///
/// Bottleneck blocks `[3, 8, 36, 3]` with batch-norm after every convolution;
/// exact count 60.3M.
pub fn resnet152() -> ModelSpec {
    let mut b = SpecBuilder::new(TensorShape::new(3, 224, 224));
    b.conv("conv1", 64, 7, 2, 3)
        .batchnorm("bn_conv1")
        .pool("pool1", 3, 2, 1);
    let stages: [(usize, usize, usize); 4] =
        [(256, 3, 1), (512, 8, 2), (1024, 36, 2), (2048, 3, 2)];
    for (s, &(width, blocks, first_stride)) in stages.iter().enumerate() {
        let mid = width / 4;
        for blk in 0..blocks {
            let name = format!("res{}_{blk}", s + 2);
            let input = b.shape();
            let stride = if blk == 0 { first_stride } else { 1 };
            // Projection shortcut on the first block of each stage.
            if blk == 0 {
                b.conv(&format!("{name}/shortcut"), width, 1, stride, 0);
                b.batchnorm(&format!("{name}/shortcut_bn"));
                b.set_shape(input);
            }
            b.conv(&format!("{name}/1x1_reduce"), mid, 1, stride, 0);
            b.batchnorm(&format!("{name}/1x1_reduce_bn"));
            b.conv(&format!("{name}/3x3"), mid, 3, 1, 1);
            b.batchnorm(&format!("{name}/3x3_bn"));
            b.conv(&format!("{name}/1x1_expand"), width, 1, 1, 0);
            b.batchnorm(&format!("{name}/1x1_expand_bn"));
        }
    }
    b.global_avgpool("pool5");
    b.fc("fc1000", 1000);
    ModelSpec {
        name: "ResNet-152",
        dataset: "ILSVRC12",
        default_batch: 32,
        layers: b.build(),
        paper_single_node_ips: Some(40.0),
    }
}

/// All seven descriptor models, in Table 3 order (plus AlexNet last).
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        cifar10_quick(),
        googlenet(),
        inception_v3(),
        vgg19(),
        vgg19_22k(),
        resnet152(),
        alexnet(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::SpecKind;

    fn assert_within(actual: u64, expect: f64, tol: f64, what: &str) {
        let rel = (actual as f64 - expect).abs() / expect;
        assert!(
            rel <= tol,
            "{what}: {actual} deviates {:.1}% from paper's {expect}",
            rel * 100.0
        );
    }

    #[test]
    fn cifar_quick_matches_table3_exactly() {
        let m = cifar10_quick();
        assert_eq!(m.total_params(), 145_578);
        assert_eq!(m.default_batch, 100);
    }

    #[test]
    fn vgg19_matches_table3() {
        let m = vgg19();
        assert_within(m.total_params(), 143.7e6, 0.01, "VGG19 params");
        // fc6 is 4096 × 25088.
        let fc6 = m.layers.iter().find(|l| l.name == "fc6").unwrap();
        assert_eq!(fc6.fc_shape(), Some((4096, 25088)));
        assert_eq!(fc6.params, 4096 * 25088 + 4096);
        // FC share ≈ 86%.
        assert!(m.fc_fraction() > 0.84 && m.fc_fraction() < 0.88);
    }

    #[test]
    fn vgg19_22k_matches_table3() {
        let m = vgg19_22k();
        assert_within(m.total_params(), 229.0e6, 0.01, "VGG19-22K params");
        // Paper: "three FC layers that occupy 91% of model parameters".
        assert!(
            m.fc_fraction() > 0.90 && m.fc_fraction() < 0.92,
            "fc fraction {}",
            m.fc_fraction()
        );
    }

    #[test]
    fn googlenet_is_five_to_seven_million() {
        let m = googlenet();
        // Paper quotes 5M ("12x fewer than AlexNet"); the exact deploy
        // network with biases is 6.998M.
        assert!(
            m.total_params() > 5_000_000 && m.total_params() < 7_100_000,
            "GoogLeNet params {}",
            m.total_params()
        );
        // Exactly one FC layer, the thin 1000×1024 classifier.
        let fcs: Vec<_> = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, SpecKind::FullyConnected { .. }))
            .collect();
        assert_eq!(fcs.len(), 1);
        assert_eq!(fcs[0].fc_shape(), Some((1000, 1024)));
    }

    #[test]
    fn inception_v3_matches_table3() {
        let m = inception_v3();
        assert_within(m.total_params(), 27.0e6, 0.03, "Inception-V3 params");
    }

    #[test]
    fn resnet152_matches_table3() {
        let m = resnet152();
        assert_within(m.total_params(), 60.2e6, 0.01, "ResNet-152 params");
    }

    #[test]
    fn alexnet_matches_section_2_2() {
        let m = alexnet();
        assert_within(m.total_params(), 61.5e6, 0.02, "AlexNet params");
    }

    #[test]
    fn vgg19_flops_are_plausible() {
        // Published VGG19 forward cost is 19.6 GMACs at 224², i.e. ~39.2
        // GFLOPs at 2 FLOPs per multiply-accumulate.
        let m = vgg19();
        let gf = m.fwd_flops() as f64 / 1e9;
        assert!(gf > 36.0 && gf < 43.0, "VGG19 fwd = {gf} GFLOPs");
    }

    #[test]
    fn googlenet_flops_are_plausible() {
        // Published ~1.5 GMACs ≈ 3 GFLOPs forward.
        let m = googlenet();
        let gf = m.fwd_flops() as f64 / 1e9;
        assert!(gf > 2.5 && gf < 4.0, "GoogLeNet fwd = {gf} GFLOPs");
    }

    #[test]
    fn resnet152_flops_are_plausible() {
        // Published ~11.3 GMACs ≈ 22.6 GFLOPs forward.
        let m = resnet152();
        let gf = m.fwd_flops() as f64 / 1e9;
        assert!(gf > 20.0 && gf < 26.0, "ResNet-152 fwd = {gf} GFLOPs");
    }

    #[test]
    fn inception_v3_flops_are_plausible() {
        // Published ~5.7 GMACs ≈ 11.4 GFLOPs forward (+ aux).
        let m = inception_v3();
        let gf = m.fwd_flops() as f64 / 1e9;
        assert!(gf > 10.0 && gf < 14.0, "Inception-V3 fwd = {gf} GFLOPs");
    }

    #[test]
    fn vgg19_per_layer_counts_match_published_table() {
        // Spot-check individual layers against the architecture table of
        // Simonyan & Zisserman (weights + biases).
        let m = vgg19();
        let by_name = |name: &str| m.layers.iter().find(|l| l.name == name).unwrap().params;
        assert_eq!(by_name("conv1_1"), (3 * 9 * 64 + 64) as u64);
        assert_eq!(by_name("conv1_2"), (64 * 9 * 64 + 64) as u64);
        assert_eq!(by_name("conv3_1"), (128 * 9 * 256 + 256) as u64);
        assert_eq!(by_name("conv5_4"), (512 * 9 * 512 + 512) as u64);
        assert_eq!(by_name("fc7"), (4096 * 4096 + 4096) as u64);
        assert_eq!(by_name("fc8"), (4096 * 1000 + 1000) as u64);
    }

    #[test]
    fn googlenet_inception_3a_matches_published_config() {
        // Module 3a on 192 channels: 64 1x1 + (96 -> 128) 3x3 + (16 -> 32)
        // 5x5 + 32 pool-proj.
        let m = googlenet();
        let p = |name: &str| m.layers.iter().find(|l| l.name == name).unwrap().params;
        assert_eq!(p("inception_3a/1x1"), (192 * 64 + 64) as u64);
        assert_eq!(p("inception_3a/3x3_reduce"), (192 * 96 + 96) as u64);
        assert_eq!(p("inception_3a/3x3"), (96 * 9 * 128 + 128) as u64);
        assert_eq!(p("inception_3a/5x5_reduce"), (192 * 16 + 16) as u64);
        assert_eq!(p("inception_3a/5x5"), (16 * 25 * 32 + 32) as u64);
        assert_eq!(p("inception_3a/pool_proj"), (192 * 32 + 32) as u64);
    }

    #[test]
    fn resnet152_structure_counts() {
        let m = resnet152();
        // 3 + 8 + 36 + 3 bottlenecks, 3 convs each, plus conv1 and 4
        // projection shortcuts = 155 convolutions.
        let convs = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, SpecKind::Conv))
            .count();
        assert_eq!(convs, 155, "ResNet-152's published conv count");
        // One batch-norm per convolution.
        let norms = m
            .layers
            .iter()
            .filter(|l| matches!(l.kind, SpecKind::Norm))
            .count();
        assert_eq!(norms, 155);
    }

    #[test]
    fn alexnet_fc6_dominates_parameters() {
        // fc6 (9216 -> 4096) alone holds ~62% of AlexNet's parameters — the
        // skew the paper's Section 2.2 motivating example relies on.
        let m = alexnet();
        let fc6 = m.layers.iter().find(|l| l.name == "fc6").unwrap();
        assert_eq!(fc6.params, (9216 * 4096 + 4096) as u64);
        assert!(fc6.params as f64 / m.total_params() as f64 > 0.55);
    }

    #[test]
    fn all_models_have_unique_layer_names() {
        for m in all_models() {
            let mut names: Vec<_> = m.layers.iter().map(|l| l.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "{}: duplicate layer names", m.name);
        }
    }

    #[test]
    fn backward_flops_exceed_forward() {
        for m in all_models() {
            assert!(m.bwd_flops() > m.fwd_flops(), "{}", m.name);
        }
    }

    #[test]
    fn batch_sizes_match_table3() {
        let batches: Vec<(String, usize)> = all_models()
            .into_iter()
            .map(|m| (m.name.to_string(), m.default_batch))
            .collect();
        assert!(batches.contains(&("CIFAR-10 quick".into(), 100)));
        assert!(batches.contains(&("GoogLeNet".into(), 128)));
        assert!(batches.contains(&("Inception-V3".into(), 32)));
        assert!(batches.contains(&("VGG19".into(), 32)));
        assert!(batches.contains(&("VGG19-22K".into(), 32)));
        assert!(batches.contains(&("ResNet-152".into(), 32)));
    }
}
