//! Property-based tests for the DAG network container.

use poseidon_nn::graph::GraphNetwork;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::layers::{FullyConnected, ReLU};
use poseidon_nn::Model;
use poseidon_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random-ish layered DAG of FC layers: `width` parallel branches
/// from a shared stem, concatenated into a classifier.
fn fan_out_graph(
    input: usize,
    branches: usize,
    hidden: usize,
    classes: usize,
    seed: u64,
) -> GraphNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = GraphNetwork::new(TensorShape::flat(input));
    let stem = g.add_layer(
        g.input(),
        Box::new(FullyConnected::new("stem", input, hidden, &mut rng)),
    );
    let relu = g.add_layer(
        stem,
        Box::new(ReLU::new("stem_relu", TensorShape::flat(hidden))),
    );
    let mut outs = Vec::new();
    for b in 0..branches {
        let id = g.add_layer(
            relu,
            Box::new(FullyConnected::new(
                format!("branch{b}"),
                hidden,
                hidden,
                &mut rng,
            )),
        );
        outs.push(id);
    }
    let cat = g.concat(&outs);
    let fc = g.add_layer(
        cat,
        Box::new(FullyConnected::new(
            "head",
            branches * hidden,
            classes,
            &mut rng,
        )),
    );
    g.set_output(fc);
    g
}

fn random_input(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    poseidon_tensor::init::gaussian(&mut m, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
    m
}

proptest! {
    /// Forward is deterministic and batch rows are independent.
    #[test]
    fn graph_forward_rows_are_independent(
        branches in 1usize..4,
        hidden in 1usize..6,
        seed in 0u64..100,
    ) {
        let mut g = fan_out_graph(5, branches, hidden, 3, seed);
        let x = random_input(3, 5, seed ^ 0x55);
        let whole = g.forward(&x);
        for r in 0..3 {
            let row = Matrix::from_vec(1, 5, x.row(r).to_vec());
            let single = g.forward(&row);
            for c in 0..3 {
                prop_assert!((whole[(r, c)] - single[(0, c)]).abs() < 1e-5);
            }
        }
    }

    /// The WFBP callback order is strictly reverse-topological for any fan-out.
    #[test]
    fn graph_callback_order_is_reverse_topological(
        branches in 1usize..5,
        seed in 0u64..100,
    ) {
        let mut g = fan_out_graph(4, branches, 3, 2, seed);
        let x = random_input(2, 4, seed);
        let y = g.forward(&x);
        let mut grad = Matrix::zeros(y.rows(), y.cols());
        grad.map_inplace(|_| 0.1);
        let mut order = Vec::new();
        g.backward_with(&grad, &mut |id, _| order.push(id));
        for w in order.windows(2) {
            prop_assert!(w[0] > w[1], "non-monotone callback order {order:?}");
        }
        prop_assert_eq!(order.len(), g.trainable_slots().len() + 1 /* relu */);
    }

    /// A shared stem feeding N identical branches receives exactly N times
    /// the gradient of the single-branch case (fan-out accumulation).
    #[test]
    fn graph_fan_out_gradient_scales_with_branch_count(
        branches in 2usize..5,
        seed in 0u64..50,
    ) {
        // Build the N-branch graph and a 1-branch graph whose branch weights
        // equal branch 0's — with all branch weights forced identical, the
        // stem gradient of the N-branch graph is N x the 1-branch gradient.
        let hidden = 4;
        let mut multi = fan_out_graph(5, branches, hidden, 2, seed);
        let mut single = fan_out_graph(5, 1, hidden, 2, seed);

        // Force every branch of `multi` to match `single`'s branch 0, and the
        // heads to be column-replications so output paths are identical.
        let branch_w = single.slot(3).unwrap().params().unwrap().weights.clone();
        let branch_b = single.slot(3).unwrap().params().unwrap().bias.clone();
        for b in 0..branches {
            let p = multi.slot_mut(3 + b).unwrap().params_mut().unwrap();
            p.set_params(&branch_w, &branch_b);
        }
        // Head of single: 2 x hidden. Head of multi: 2 x branches*hidden —
        // fill with single's head tiled, scaled by 1/branches so outputs match.
        let head_single = single.slot(4 + 1).unwrap().params().unwrap().weights.clone();
        let head_bias = single.slot(4 + 1).unwrap().params().unwrap().bias.clone();
        let mut tiled = Matrix::zeros(2, branches * hidden);
        for r in 0..2 {
            for b in 0..branches {
                for c in 0..hidden {
                    tiled[(r, b * hidden + c)] = head_single[(r, c)] / branches as f32;
                }
            }
        }
        {
            let p = multi.slot_mut(3 + branches + 1).unwrap().params_mut().unwrap();
            p.set_params(&tiled, &head_bias);
        }
        // Stems already identical (same seed/order of construction).
        let stem_w_m = multi.slot(1).unwrap().params().unwrap().weights.clone();
        let stem_w_s = single.slot(1).unwrap().params().unwrap().weights.clone();
        prop_assert!(stem_w_m.max_abs_diff(&stem_w_s) < 1e-7);

        let x = random_input(2, 5, seed ^ 0x77);
        let ym = multi.forward(&x);
        let ys = single.forward(&x);
        prop_assert!(ym.max_abs_diff(&ys) < 1e-4, "outputs should match by construction");

        let grad = random_input(2, 2, seed ^ 0x99);
        multi.backward(&grad);
        single.backward(&grad);
        let gm = &multi.slot(1).unwrap().params().unwrap().grad_weights;
        let gs = &single.slot(1).unwrap().params().unwrap().grad_weights;
        // Same loss, same function — the stem gradients must agree.
        prop_assert!(gm.max_abs_diff(gs) <= 1e-3 * (1.0 + gs.max_abs()),
            "stem gradient mismatch across equivalent graphs");
    }

    /// Replicas built by the same constructor are bitwise identical (the
    /// property the distributed runtime's slot addressing relies on).
    #[test]
    fn graph_replicas_are_identical(branches in 1usize..4, seed in 0u64..200) {
        let a = fan_out_graph(6, branches, 3, 2, seed);
        let b = fan_out_graph(6, branches, 3, 2, seed);
        prop_assert_eq!(a.max_param_diff_with(&b), 0.0);
    }
}
