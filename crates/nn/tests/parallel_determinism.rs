//! Thread-count independence of the batch-parallel layer kernels.
//!
//! The distributed runtime's bit-comparability story (DESIGN §4.4) requires
//! that layer compute is a pure function of its inputs — in particular,
//! independent of how many compute threads fan the batch out. These tests
//! train a real CIFAR-10-quick network at thread counts {1, 2, 7} and demand
//! *bitwise* identical logits, gradients and parameter trajectories.
//!
//! The compute-thread knob is thread-local, so each configuration runs on a
//! fresh spawned thread and cannot leak its setting into sibling tests.

use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::{parallel, presets, Network};
use poseidon_tensor::Matrix;

/// Deterministic input batch (LCG; no dependence on rand's stream).
fn synthetic_batch(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut state = seed;
    for v in m.as_mut_slice() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32) / (1u64 << 24) as f32 - 0.5;
    }
    m
}

/// One run: build CIFAR-10-quick, take `steps` SGD steps on a fixed batch,
/// return the final parameters of every layer plus the last logits/loss grad.
struct RunResult {
    params: Vec<Vec<f32>>,
    logits: Matrix,
    grads: Vec<Vec<f32>>,
}

fn train_at(threads: usize, steps: usize) -> RunResult {
    std::thread::spawn(move || {
        parallel::set_compute_threads(threads);
        let mut net: Network = presets::cifar_quick(10, 42);
        let x = synthetic_batch(16, 3 * 32 * 32, 0xC0FFEE);
        let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
        let head = SoftmaxCrossEntropy;
        let mut logits = Matrix::zeros(1, 1);
        for _ in 0..steps {
            logits = net.forward(&x);
            let out = head.evaluate(&logits, &labels);
            net.backward(&out.grad);
            net.apply_own_grads(-0.01);
        }
        let mut params = Vec::new();
        let mut grads = Vec::new();
        for l in 0..net.num_layers() {
            if let Some(p) = net.layer(l).params() {
                params.push(p.weights.as_slice().to_vec());
                params.push(p.bias.as_slice().to_vec());
                grads.push(p.grad_weights.as_slice().to_vec());
                grads.push(p.grad_bias.as_slice().to_vec());
            }
        }
        RunResult {
            params,
            logits,
            grads,
        }
    })
    .join()
    .expect("training thread panicked")
}

fn assert_bitwise(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} != {y} (bitwise)"
        );
    }
}

#[test]
fn cifar_quick_trajectory_is_bitwise_identical_across_thread_counts() {
    let base = train_at(1, 3);
    for threads in [2usize, 7] {
        let run = train_at(threads, 3);
        assert_bitwise(
            base.logits.as_slice(),
            run.logits.as_slice(),
            &format!("logits@t{threads}"),
        );
        assert_eq!(base.grads.len(), run.grads.len());
        for (i, (g1, gt)) in base.grads.iter().zip(&run.grads).enumerate() {
            assert_bitwise(g1, gt, &format!("grad{i}@t{threads}"));
        }
        for (i, (p1, pt)) in base.params.iter().zip(&run.params).enumerate() {
            assert_bitwise(p1, pt, &format!("param{i}@t{threads}"));
        }
    }
}

#[test]
fn explicit_thread_setting_overrides_environment() {
    std::thread::spawn(|| {
        parallel::set_compute_threads(3);
        assert_eq!(parallel::compute_threads(), 3);
        parallel::reset_compute_threads();
        assert!(parallel::compute_threads() >= 1);
    })
    .join()
    .unwrap();
}
