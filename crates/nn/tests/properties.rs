//! Property-based tests for the neural-network engine.

use poseidon_nn::layer::{Layer, TensorShape};
use poseidon_nn::layers::{FullyConnected, ReLU};
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::presets;
use poseidon_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    poseidon_tensor::init::gaussian(&mut m, 0.0, 1.0, &mut StdRng::seed_from_u64(seed));
    m
}

proptest! {
    /// FC sufficient factors reconstruct the dense weight gradient exactly,
    /// for arbitrary layer shapes and batch sizes.
    #[test]
    fn fc_sf_reconstruction_matches_dense_gradient(
        inf in 1usize..12,
        outf in 1usize..12,
        batch in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut fc = FullyConnected::new("fc", inf, outf, &mut StdRng::seed_from_u64(seed));
        let x = random_matrix(batch, inf, seed ^ 0xAB);
        let d = random_matrix(batch, outf, seed ^ 0xCD);
        fc.forward(&x);
        fc.backward(&d);
        let dense = fc.params().unwrap().grad_weights.clone();
        let rebuilt = fc.sufficient_factors().unwrap().reconstruct();
        let tol = 1e-4 * (1.0 + dense.max_abs());
        prop_assert!(rebuilt.max_abs_diff(&dense) <= tol);
    }

    /// Gradient accumulation over a batch equals the sum of per-sample
    /// gradients (the additivity PS exploits; Eq. 2 of the paper).
    #[test]
    fn fc_batch_gradient_is_sum_of_sample_gradients(
        inf in 1usize..8,
        outf in 1usize..8,
        batch in 2usize..6,
        seed in 0u64..200,
    ) {
        let mut fc = FullyConnected::new("fc", inf, outf, &mut StdRng::seed_from_u64(seed));
        let x = random_matrix(batch, inf, seed ^ 0x11);
        let d = random_matrix(batch, outf, seed ^ 0x22);
        fc.forward(&x);
        fc.backward(&d);
        let whole = fc.params().unwrap().grad_weights.clone();

        let mut acc = Matrix::zeros(outf, inf);
        for k in 0..batch {
            let xk = Matrix::from_vec(1, inf, x.row(k).to_vec());
            let dk = Matrix::from_vec(1, outf, d.row(k).to_vec());
            fc.forward(&xk);
            fc.backward(&dk);
            acc.add_assign(&fc.params().unwrap().grad_weights);
        }
        prop_assert!(whole.max_abs_diff(&acc) <= 1e-3 * (1.0 + acc.max_abs()));
    }

    /// ReLU backward never lets gradient through where forward clamped.
    #[test]
    fn relu_gradient_is_consistent_with_mask(
        n in 1usize..32,
        seed in 0u64..200,
    ) {
        let mut r = ReLU::new("relu", TensorShape::flat(n));
        let x = random_matrix(3, n, seed);
        let y = r.forward(&x);
        let g = random_matrix(3, n, seed ^ 0x7);
        let gin = r.backward(&g);
        for i in 0..3 {
            for j in 0..n {
                if y[(i, j)] == 0.0 {
                    prop_assert_eq!(gin[(i, j)], 0.0);
                } else {
                    prop_assert_eq!(gin[(i, j)], g[(i, j)]);
                }
            }
        }
    }

    /// Softmax gradient rows always sum to ~0 and loss is non-negative.
    #[test]
    fn softmax_invariants(
        classes in 2usize..10,
        batch in 1usize..6,
        seed in 0u64..300,
    ) {
        let logits = random_matrix(batch, classes, seed);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let out = SoftmaxCrossEntropy.evaluate(&logits, &labels);
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.correct <= batch);
        for s in 0..batch {
            let sum: f32 = out.grad.row(s).iter().sum();
            prop_assert!(sum.abs() < 1e-5);
        }
    }

    /// An MLP forward pass is deterministic and batch rows are independent:
    /// evaluating rows separately gives the same outputs.
    #[test]
    fn network_rows_are_independent(seed in 0u64..100) {
        let mut net = presets::mlp(&[6, 10, 4], seed);
        let x = random_matrix(4, 6, seed ^ 0x33);
        let whole = net.forward(&x);
        for k in 0..4 {
            let row = Matrix::from_vec(1, 6, x.row(k).to_vec());
            let single = net.forward(&row);
            for c in 0..4 {
                prop_assert!((whole[(k, c)] - single[(0, c)]).abs() < 1e-5);
            }
        }
    }
}
