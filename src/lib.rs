//! Workspace root for the Poseidon reproduction.
//!
//! This crate only re-exports the member crates so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` have a
//! single import surface. The actual implementation lives in:
//!
//! * [`poseidon`] — the paper's contribution (WFBP, HybComm, KV store, SFB).
//! * [`poseidon_nn`] — the neural-network engine, model zoo and datasets.
//! * [`poseidon_netsim`] — the discrete-event cluster simulator.
//! * [`poseidon_tensor`] — dense tensor kernels and gradient compression.

pub use poseidon;
pub use poseidon_netsim;
pub use poseidon_nn;
pub use poseidon_tensor;
