//! The headline systems claim of Table 1, verified end to end: the bytes the
//! threaded runtime actually moves across its transport equal the analytic
//! cost model's predictions. Since PR 3 the counted bytes are the *encoded
//! frame lengths* ([`poseidon::wire`]) — the same buffers the TCP transport
//! writes to its sockets — so this also pins the wire format's overhead.

use poseidon::config::{ClusterConfig, Partition, SchemePolicy};
use poseidon::costmodel;
use poseidon::runtime::{train, RuntimeConfig};
use poseidon::transport::Message;
use poseidon::wire::{encode_frame, FRAME_HEADER_BYTES};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_tensor::bytesio;

const IN: usize = 30;
const HID: usize = 40;
const OUT: usize = 6;
const WORKERS: usize = 4;
const BATCH: usize = 8;
const ITERS: usize = 3;
const PAIR: usize = 64;
const HDR: u64 = FRAME_HEADER_BYTES as u64;

fn run(policy: SchemePolicy) -> poseidon::runtime::TrainResult<poseidon_nn::Network> {
    let data = Dataset::gaussian_clusters(TensorShape::flat(IN), OUT, 64, 0.4, 3);
    let cfg = RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: PAIR },
        ..RuntimeConfig::new(WORKERS, BATCH, 0.1, ITERS)
    };
    train(&|| presets::mlp(&[IN, HID, OUT], 4), &data, None, &cfg)
}

/// Chunk count for `elems` parameters at the configured KV-pair size.
fn chunks(elems: usize) -> u64 {
    elems.div_ceil(PAIR) as u64
}

/// The accounting must be frame-derived: a message's `wire_bytes()` is
/// exactly the length of its encoded frame, no parallel formula to drift.
#[test]
fn wire_bytes_equals_encoded_frame_length() {
    let msg = Message::GradChunk {
        iter: 5,
        layer: 1,
        chunk: 0,
        codec: poseidon::wire::Codec::Identity,
        data: poseidon::wire::encode_f32s(&vec![0.0f32; PAIR]),
    };
    assert_eq!(msg.wire_bytes(), encode_frame(&msg).len() as u64);
    assert_eq!(msg.wire_bytes(), HDR + (PAIR as u64) * 4);
}

#[test]
fn ps_traffic_matches_exact_message_accounting() {
    let result = run(SchemePolicy::AlwaysPs);
    // Layer parameter counts (weights + bias).
    let layer_elems = [HID * IN + HID, OUT * HID + OUT];
    // Every chunk is pushed by P workers and pulled to P workers; the owning
    // shard is colocated with one worker, so P-1 of each cross the network.
    let mut expect = 0u64;
    for elems in layer_elems {
        let n_chunks = chunks(elems);
        let payload = elems as u64 * 4 + n_chunks * HDR;
        expect += 2 * (WORKERS as u64 - 1) * payload;
    }
    expect *= ITERS as u64;
    assert_eq!(
        result.traffic.total_bytes(),
        expect,
        "measured PS bytes differ from the exact per-frame accounting"
    );
}

#[test]
fn ps_traffic_matches_table1_formula_asymptotically() {
    // Table 1 says a colocated node carries 2·M·N·(P1+P2-2)/P2 values per FC
    // layer. The runtime additionally ships the bias vector (modelled here by
    // extending N by one column) and 32-byte frame headers (~13% at this
    // deliberately tiny KV-pair size; negligible at the real 2 MB pairs), so
    // allow a 15% envelope.
    let result = run(SchemePolicy::AlwaysPs);
    let cluster = ClusterConfig::colocated(WORKERS, BATCH);
    let analytic_values = costmodel::ps_cost(HID, IN + 1, &cluster).server_and_worker
        + costmodel::ps_cost(OUT, HID + 1, &cluster).server_and_worker;
    let analytic_bytes = analytic_values * 4.0 * ITERS as f64;
    let measured: f64 = result
        .traffic
        .per_node_totals()
        .iter()
        .map(|&b| b as f64)
        .sum::<f64>()
        / WORKERS as f64;
    let rel = (measured - analytic_bytes).abs() / analytic_bytes;
    assert!(
        rel < 0.15,
        "per-node PS traffic {measured} vs Table 1 {analytic_bytes} ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn sfb_traffic_matches_exact_message_accounting() {
    let result = run(SchemePolicy::AlwaysSfbForFc);
    // Every FC layer: each worker broadcasts one SF batch to P-1 peers.
    let mut expect = 0u64;
    for (m, n) in [(HID, IN), (OUT, HID)] {
        let payload = bytesio::sf_batch_wire_bytes(BATCH, m, n) as u64 + HDR;
        expect += WORKERS as u64 * (WORKERS as u64 - 1) * payload;
    }
    expect *= ITERS as u64;
    assert_eq!(
        result.traffic.total_bytes(),
        expect,
        "measured SFB bytes differ from the exact per-frame accounting"
    );
}

#[test]
fn sfb_traffic_matches_table1_formula() {
    let result = run(SchemePolicy::AlwaysSfbForFc);
    let cluster = ClusterConfig::colocated(WORKERS, BATCH);
    // Table 1: per-node 2K(P1-1)(M+N) values per layer. Frame + SF-batch
    // headers add ~2% at these tiny layers.
    let analytic_values =
        costmodel::sfb_cost(HID, IN, &cluster) + costmodel::sfb_cost(OUT, HID, &cluster);
    let analytic_bytes = analytic_values * 4.0 * ITERS as f64;
    let measured: f64 = result
        .traffic
        .per_node_totals()
        .iter()
        .map(|&b| b as f64)
        .sum::<f64>()
        / WORKERS as f64;
    let rel = (measured - analytic_bytes).abs() / analytic_bytes;
    assert!(
        rel < 0.03,
        "per-node SFB traffic {measured} vs Table 1 {analytic_bytes} ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn ps_traffic_is_balanced_across_nodes() {
    let result = run(SchemePolicy::AlwaysPs);
    let totals = result.traffic.per_node_totals();
    let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
    for (node, &b) in totals.iter().enumerate() {
        assert!(
            (b as f64 - mean).abs() / mean < 0.35,
            "node {node} carries {b} bytes vs mean {mean} — KV pairs should balance"
        );
    }
}

#[test]
fn onebit_moves_fewer_bytes_than_dense_ps() {
    let dense = run(SchemePolicy::AlwaysPs);
    let onebit = run(SchemePolicy::OneBit);
    // 1 bit per element vs 32, but each KV chunk keeps its 32-byte frame
    // header and adds the 16-byte quantizer header, so at PAIR-sized chunks
    // the achievable ratio is ~4-5x rather than the asymptotic 32x.
    assert!(
        onebit.traffic.total_bytes() < dense.traffic.total_bytes() / 4,
        "1-bit {} bytes should be far below dense {} bytes",
        onebit.traffic.total_bytes(),
        dense.traffic.total_bytes()
    );
}
