//! End-to-end training across the full stack: real CNN, real datasets,
//! threaded workers + shards, hybrid communication — the system a user would
//! actually run, exercised as a whole.

use poseidon::config::SchemePolicy;
use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;

#[test]
fn cnn_trains_to_low_error_with_hybrid_comm() {
    let shape = TensorShape::new(3, 16, 16);
    let all = Dataset::smooth_clusters(shape, 6, 480, 1.2, 17);
    let (train_set, test_set) = all.split_at(400);
    let cfg = RuntimeConfig {
        eval_every: 50,
        ..RuntimeConfig::new(4, 8, 0.08, 150)
    };
    let result = train(
        &|| presets::cifar_quick_scaled(shape, 6, 6, 23),
        &train_set,
        Some(&test_set),
        &cfg,
    );
    let mut net = result.net;
    let err = evaluate_error(&mut net, &test_set);
    assert!(
        err < 0.25,
        "4-worker hybrid training should reach <25% error, got {err}"
    );
    // Loss decreased substantially.
    let first: f32 = result.losses[..10].iter().sum::<f32>() / 10.0;
    let last: f32 = result.losses[140..].iter().sum::<f32>() / 10.0;
    assert!(last < first * 0.5, "loss {first} -> {last}");
    // The eval hook produced samples at the requested cadence.
    assert_eq!(result.test_errors.len(), 3);
}

#[test]
fn mlp_converges_with_every_policy() {
    let all = Dataset::gaussian_clusters(TensorShape::flat(16), 4, 320, 0.4, 29);
    let (train_set, test_set) = all.split_at(256);
    for policy in [
        SchemePolicy::AlwaysPs,
        SchemePolicy::AlwaysSfbForFc,
        SchemePolicy::Hybrid,
        SchemePolicy::AdamSf,
        SchemePolicy::OneBit,
    ] {
        let cfg = RuntimeConfig {
            policy,
            ..RuntimeConfig::new(4, 8, 0.1, 80)
        };
        let result = train(&|| presets::mlp(&[16, 24, 4], 31), &train_set, None, &cfg);
        let mut net = result.net;
        let err = evaluate_error(&mut net, &test_set);
        assert!(
            err < 0.2,
            "{policy:?}: distributed training should reach <20% error, got {err}"
        );
    }
}

#[test]
fn many_workers_still_correct() {
    // 8 workers — more threads than some CI cores; correctness must hold.
    let data = Dataset::gaussian_clusters(TensorShape::flat(10), 3, 160, 0.4, 41);
    let cfg = RuntimeConfig::new(8, 4, 0.1, 20);
    let result = train(&|| presets::mlp(&[10, 12, 3], 37), &data, None, &cfg);
    assert!(result.losses.last().unwrap() < &result.losses[0]);
    // All 8 nodes participated in traffic.
    let totals = result.traffic.per_node_totals();
    assert!(totals.iter().all(|&b| b > 0));
}

#[test]
fn single_worker_runs_without_network() {
    let data = Dataset::gaussian_clusters(TensorShape::flat(8), 2, 64, 0.3, 43);
    let cfg = RuntimeConfig::new(1, 8, 0.1, 10);
    let result = train(&|| presets::mlp(&[8, 6, 2], 41), &data, None, &cfg);
    assert_eq!(result.traffic.total_bytes(), 0, "colocated loop-back only");
    assert!(result.losses.last().unwrap() < &result.losses[0]);
}

#[test]
fn scheme_assignment_respects_hybrid_cost_model() {
    // A fat FC layer at tiny batch must pick SFB; run it end to end.
    let data = Dataset::gaussian_clusters(TensorShape::flat(64), 4, 64, 0.4, 47);
    let cfg = RuntimeConfig {
        batch_per_worker: 2, // tiny K favours SFB
        ..RuntimeConfig::new(4, 2, 0.1, 6)
    };
    let result = train(&|| presets::mlp(&[64, 96, 4], 43), &data, None, &cfg);
    use poseidon::config::CommScheme;
    assert!(
        result.schemes.iter().any(|&(_, s)| s == CommScheme::Sfb),
        "expected at least one SFB layer at K=2: {:?}",
        result.schemes
    );
}
