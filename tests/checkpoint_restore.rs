//! Checkpoint/restore is exact: a run killed at an iteration boundary and
//! restored from its checkpoint finishes *bitwise identical* to the
//! uninterrupted run — parameters, momentum velocity, the codec residual
//! streams and the per-iteration losses — under every synchronization
//! scheme. The checkpoint codec itself round-trips bit-exactly and rejects
//! truncation and corruption outright.

use poseidon::checkpoint::{decode_training, encode_training};
use poseidon::config::{Codec, CodecPolicy, Partition, SchemePolicy};
use poseidon::runtime::{flatten_model_params, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::time::Duration;

const WORKERS: usize = 2;
const BATCH: usize = 8;
const ITERS: usize = 6;
const CUT: usize = 3;

fn dataset() -> Dataset {
    Dataset::gaussian_clusters(TensorShape::flat(12), 4, 96, 0.4, 11)
}

fn factory() -> Network {
    presets::mlp(&[12, 16, 8, 4], 7)
}

fn config(policy: SchemePolicy, codec: CodecPolicy, momentum: f32) -> RuntimeConfig {
    RuntimeConfig {
        policy,
        codec,
        momentum,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(WORKERS, BATCH, 0.15, ITERS)
    }
}

/// Runs `cfg` uninterrupted, then again as two generations split at `CUT`
/// with a full state export/restore between them, and asserts the final
/// replicas and the loss trajectories are bitwise equal.
fn assert_restore_is_bitwise(cfg: &RuntimeConfig, label: &str) {
    let full = train(&factory, &dataset(), None, cfg);

    let seg1 = train(
        &factory,
        &dataset(),
        None,
        &RuntimeConfig {
            iterations: CUT,
            export_state: true,
            ..cfg.clone()
        },
    );
    let ck = seg1
        .checkpoint
        .expect("export_state run must yield a checkpoint");
    assert_eq!(ck.next_iter, CUT as u64);
    assert_eq!(ck.workers.len(), WORKERS);
    assert_eq!(ck.shards.len(), WORKERS);

    // The binary codec is the kill boundary: what survives is the bytes.
    let blob = encode_training(&ck);
    let restored = decode_training(&blob).expect("own checkpoint must decode");
    assert_eq!(restored, ck, "{label}: checkpoint codec must be bit-exact");

    let seg2 = train(
        &factory,
        &dataset(),
        None,
        &RuntimeConfig {
            iterations: ITERS - CUT,
            start_iter: CUT,
            resume: Some(restored),
            ..cfg.clone()
        },
    );

    assert_eq!(
        seg2.net.max_param_diff(&full.net),
        0.0,
        "{label}: restored run must be bitwise equal to the uninterrupted run"
    );
    assert_eq!(
        flatten_model_params(&seg2.net),
        flatten_model_params(&full.net),
        "{label}: canonical flats must agree"
    );
    let stitched: Vec<f32> = seg1.losses.iter().chain(&seg2.losses).copied().collect();
    assert_eq!(
        stitched, full.losses,
        "{label}: loss trajectory must stitch bitwise across the restore"
    );
}

#[test]
fn restore_is_bitwise_under_ps() {
    assert_restore_is_bitwise(
        &config(SchemePolicy::AlwaysPs, CodecPolicy::Identity, 0.0),
        "ps",
    );
}

#[test]
fn restore_is_bitwise_under_sfb() {
    assert_restore_is_bitwise(
        &config(SchemePolicy::AlwaysSfbForFc, CodecPolicy::Identity, 0.0),
        "sfb",
    );
}

#[test]
fn restore_is_bitwise_under_ring() {
    assert_restore_is_bitwise(
        &config(SchemePolicy::AlwaysRing, CodecPolicy::Identity, 0.0),
        "ring",
    );
}

#[test]
fn restore_is_bitwise_under_tree() {
    assert_restore_is_bitwise(
        &config(SchemePolicy::AlwaysTree, CodecPolicy::Identity, 0.0),
        "tree",
    );
}

/// Momentum velocity and the 1-bit codec's error-feedback residuals are the
/// states a checkpoint most easily gets *almost* right; this run exercises
/// both through the kill boundary.
#[test]
fn restore_preserves_velocity_and_codec_residuals() {
    assert_restore_is_bitwise(
        &config(
            SchemePolicy::AlwaysPs,
            CodecPolicy::Always(Codec::OneBit),
            0.9,
        ),
        "ps+onebit+momentum",
    );
}

#[test]
fn corrupt_checkpoints_are_rejected() {
    let seg = train(
        &factory,
        &dataset(),
        None,
        &RuntimeConfig {
            iterations: CUT,
            export_state: true,
            ..config(SchemePolicy::AlwaysPs, CodecPolicy::Identity, 0.9)
        },
    );
    let blob = encode_training(&seg.checkpoint.expect("checkpoint"));
    // Every strict prefix is rejected — a torn write never half-loads.
    for cut in [0, 1, 4, blob.len() / 2, blob.len() - 1] {
        assert!(
            decode_training(&blob[..cut]).is_none(),
            "accepted a {cut}-of-{}-byte prefix",
            blob.len()
        );
    }
    // A flipped magic or version byte is rejected too.
    for byte in [0, 4] {
        let mut bad = blob.clone();
        bad[byte] ^= 0xFF;
        assert!(
            decode_training(&bad).is_none(),
            "accepted a checkpoint with byte {byte} corrupted"
        );
    }
}
