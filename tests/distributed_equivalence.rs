//! Cross-crate correctness: the distributed runtime's synchronous SGD is
//! exactly the algorithm it claims to be, regardless of communication scheme.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::runtime::{train, RuntimeConfig, TrainResult};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::presets;
use poseidon_nn::Network;

fn dataset() -> Dataset {
    Dataset::gaussian_clusters(TensorShape::flat(12), 4, 96, 0.4, 21)
}

fn factory() -> Network {
    presets::mlp(&[12, 16, 8, 4], 5)
}

fn run(policy: SchemePolicy, workers: usize, iters: usize) -> TrainResult<Network> {
    let cfg = RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: 37 }, // deliberately odd
        ..RuntimeConfig::new(workers, 8, 0.15, iters)
    };
    train(&factory, &dataset(), None, &cfg)
}

/// Serial large-batch SGD over the same sample stream as `P` workers of
/// batch `k` — requires re-assembling the workers' shard order.
fn serial_reference(workers: usize, k: usize, iters: usize, lr: f32) -> Network {
    let shards = dataset().partition(workers);
    let mut net = factory();
    let head = SoftmaxCrossEntropy;
    for it in 0..iters {
        // Concatenate each worker's minibatch for this iteration.
        let mut xs = poseidon_tensor::Matrix::zeros(workers * k, 12);
        let mut ys = Vec::new();
        for (w, shard) in shards.iter().enumerate() {
            let (x, y) = shard.minibatch(it * k, k);
            for r in 0..k {
                xs.row_mut(w * k + r).copy_from_slice(x.row(r));
            }
            ys.extend(y);
        }
        let logits = net.forward(&xs);
        let out = head.evaluate(&logits, &ys);
        net.backward(&out.grad);
        // Distributed update: θ += (-lr/P)·Σ_w avg-grad_w. Each worker's loss
        // head divides by k, the global head divides by P·k, so the global
        // gradient is exactly (1/P)·Σ_w grad_w: apply with plain -lr.
        net.apply_own_grads(-lr);
    }
    net
}

#[test]
fn distributed_ps_equals_serial_large_batch() {
    let workers = 3;
    let result = run(SchemePolicy::AlwaysPs, workers, 6);
    let serial = serial_reference(workers, 8, 6, 0.15);
    let diff = result.net.max_param_diff(&serial);
    assert!(
        diff < 5e-5,
        "distributed PS diverged from the serial large-batch trajectory by {diff}"
    );
}

#[test]
fn all_exact_schemes_agree_pairwise() {
    let ps = run(SchemePolicy::AlwaysPs, 4, 6);
    let sfb = run(SchemePolicy::AlwaysSfbForFc, 4, 6);
    let adam = run(SchemePolicy::AdamSf, 4, 6);
    let hybrid = run(SchemePolicy::Hybrid, 4, 6);
    assert!(ps.net.max_param_diff(&sfb.net) < 1e-4, "PS vs SFB");
    assert!(ps.net.max_param_diff(&adam.net) < 1e-4, "PS vs Adam");
    assert!(ps.net.max_param_diff(&hybrid.net) < 1e-4, "PS vs Hybrid");
}

#[test]
fn one_bit_is_lossy_but_learns() {
    let exact = run(SchemePolicy::AlwaysPs, 2, 8);
    let onebit = run(SchemePolicy::OneBit, 2, 8);
    assert!(
        onebit.net.max_param_diff(&exact.net) > 1e-5,
        "1-bit must not silently reproduce the exact trajectory"
    );
    assert!(
        onebit.losses.last().unwrap() < &onebit.losses[0],
        "1-bit should still reduce the loss: {:?}",
        onebit.losses
    );
}

#[test]
fn worker_count_does_not_change_global_batch_semantics() {
    // 2 workers x batch 8 vs 4 workers x batch 4: same global batch, same
    // data order (contiguous shards differ, so we only check both learn to a
    // similar level, not bitwise equality).
    let a = run(SchemePolicy::AlwaysPs, 2, 8);
    let cfg = RuntimeConfig {
        policy: SchemePolicy::AlwaysPs,
        ..RuntimeConfig::new(4, 4, 0.15, 8)
    };
    let b = train(&factory, &dataset(), None, &cfg);
    assert!(a.losses.last().unwrap() < &a.losses[0]);
    assert!(b.losses.last().unwrap() < &b.losses[0]);
}

#[test]
fn repeated_runs_are_bitwise_deterministic() {
    let a = run(SchemePolicy::Hybrid, 4, 5);
    let b = run(SchemePolicy::Hybrid, 4, 5);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.net.max_param_diff(&b.net), 0.0);
    let a1 = run(SchemePolicy::OneBit, 3, 5);
    let b1 = run(SchemePolicy::OneBit, 3, 5);
    assert_eq!(
        a1.net.max_param_diff(&b1.net),
        0.0,
        "even the lossy path is deterministic"
    );
}
