//! WFBP on non-chain structures: the paper argues the scheme "is generally
//! applicable to other non-chain like structures (e.g., tree-like
//! structures)". These tests train a branched (inception-style) DAG network
//! through the full distributed runtime.

use poseidon::config::SchemePolicy;
use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::graph::GraphNetwork;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::layers::{Conv2d, FullyConnected, MaxPool2d, ReLU};
use poseidon_nn::Model;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small two-branch inception-style classifier on 3×8×8 inputs.
fn branched(classes: usize, seed: u64) -> GraphNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = TensorShape::new(3, 8, 8);
    let mut g = GraphNetwork::new(shape);
    let stem = g.add_layer(
        g.input(),
        Box::new(Conv2d::new("stem", shape, 6, 3, 1, 1, &mut rng)),
    );
    let stem_shape = g.node_shape(stem);
    let b1 = g.add_layer(
        stem,
        Box::new(Conv2d::new("b1_1x1", stem_shape, 4, 1, 1, 0, &mut rng)),
    );
    let b2r = g.add_layer(
        stem,
        Box::new(Conv2d::new("b2_reduce", stem_shape, 4, 1, 1, 0, &mut rng)),
    );
    let b2 = g.add_layer(
        b2r,
        Box::new(Conv2d::new(
            "b2_3x3",
            g.node_shape(b2r),
            6,
            3,
            1,
            1,
            &mut rng,
        )),
    );
    let merged = g.concat(&[b1, b2]);
    let relu = g.add_layer(merged, Box::new(ReLU::new("relu", g.node_shape(merged))));
    let pool = g.add_layer(
        relu,
        Box::new(MaxPool2d::new("pool", g.node_shape(relu), 2, 2)),
    );
    let flat = g.node_shape(pool).len();
    let fc = g.add_layer(
        pool,
        Box::new(FullyConnected::new("fc", flat, classes, &mut rng)),
    );
    g.set_output(fc);
    g
}

fn dataset() -> Dataset {
    Dataset::smooth_clusters(TensorShape::new(3, 8, 8), 4, 512, 1.2, 91)
}

#[test]
fn branched_network_trains_distributed_with_hybrid_comm() {
    let all = dataset();
    let (train_set, test_set) = all.split_at(416);
    let cfg = RuntimeConfig::new(4, 8, 0.1, 120);
    let result = train(&|| branched(4, 33), &train_set, None, &cfg);
    let mut net = result.net;
    let err = evaluate_error(&mut net, &test_set);
    assert!(
        err < 0.25,
        "branched distributed training should learn, err {err}"
    );
    assert!(result.losses.last().unwrap() < &result.losses[0]);
}

#[test]
fn branched_ps_and_sfb_agree() {
    let all = dataset();
    let (train_set, _) = all.split_at(416);
    let mk = |policy| {
        let cfg = RuntimeConfig {
            policy,
            batch_per_worker: 4,
            ..RuntimeConfig::new(3, 4, 0.1, 8)
        };
        train(&|| branched(4, 35), &train_set, None, &cfg)
    };
    let ps = mk(SchemePolicy::AlwaysPs);
    let sfb = mk(SchemePolicy::AlwaysSfbForFc);
    let diff = ps.net.max_param_diff_with(&sfb.net);
    assert!(diff < 1e-4, "PS and SFB disagree on the DAG: {diff}");
}

#[test]
fn branched_runs_are_deterministic() {
    let all = dataset();
    let (train_set, _) = all.split_at(416);
    let cfg = RuntimeConfig::new(4, 4, 0.1, 6);
    let a = train(&|| branched(4, 37), &train_set, None, &cfg);
    let b = train(&|| branched(4, 37), &train_set, None, &cfg);
    assert_eq!(a.net.max_param_diff_with(&b.net), 0.0);
    assert_eq!(a.losses, b.losses);
}

#[test]
fn structural_nodes_get_no_syncers() {
    // The coordinator must classify concat/input slots as untrainable.
    let g = branched(4, 39);
    use poseidon::config::{ClusterConfig, Partition};
    let c = poseidon::coordinator::Coordinator::from_model(
        &g,
        ClusterConfig::colocated(2, 8),
        SchemePolicy::Hybrid,
        Partition::default_kv_pairs(),
    );
    let trainable: Vec<usize> = c.scheme_assignment().iter().map(|&(l, _)| l).collect();
    assert_eq!(trainable, g.trainable_slots());
    // Input node (0) and the concat node are untrainable entries.
    assert!(!c.layers()[0].is_trainable());
    let concat_entry = c
        .layers()
        .iter()
        .find(|l| l.name.starts_with("<structural"));
    assert!(concat_entry.is_some(), "concat slot recorded as structural");
}
