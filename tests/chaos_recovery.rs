//! The chaos matrix: every communication scheme under scripted faults.
//!
//! The contract under test is the strongest one the repo makes: a run whose
//! transport drops, duplicates, reorders and severs scripted frames must
//! produce **bitwise identical** replicas and losses to the fault-free run —
//! the reliability layer repairs the stream completely, and the repair is
//! invisible to the training math. Conversely an *unrecoverable* fault (a
//! black-holed link) must abort with a diagnosable timeout within the
//! configured budget, never hang.
//!
//! Runs here use the threaded `train()` over the in-process fabric with the
//! chaos plane enabled ([`FaultConfig`]); the per-process TCP variant (a
//! real socket severed mid-run) lives in
//! `crates/bench/tests/tcp_sever_reconnect.rs`.

use poseidon::config::{Codec, CodecPolicy, Partition, SchemePolicy};
use poseidon::faults::{FaultAction, FaultPlan};
use poseidon::runtime::{train, FaultConfig, RuntimeConfig, TrainResult};
use poseidon::transport::ReliabilityConfig;
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::time::Duration;

const WORKERS: usize = 2;
const BATCH: usize = 8;
const ITERS: usize = 4;
const LR: f32 = 0.2;

fn dataset() -> Dataset {
    Dataset::gaussian_clusters(TensorShape::flat(12), 4, 96, 0.4, 21)
}

fn factory() -> Network {
    presets::mlp(&[12, 16, 8, 4], 5)
}

fn config(policy: SchemePolicy, faults: FaultConfig) -> RuntimeConfig {
    RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(20),
        faults,
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    }
}

fn run(policy: SchemePolicy, faults: FaultConfig) -> TrainResult<Network> {
    train(&factory, &dataset(), None, &config(policy, faults))
}

/// A fault plan exercising every recoverable action on links that carry
/// traffic under `policy`. Endpoints: 0,1 = workers on nodes 0,1; 2,3 =
/// shards colocated on the same nodes. PS traffic flows worker→shard and
/// back; SFB traffic flows worker→worker.
fn plan_for(policy: SchemePolicy) -> FaultPlan {
    let text = match policy {
        // All layers on the PS path: fault the worker→shard and
        // shard→worker links, including an (iter, layer) trigger and a
        // sever (a no-op disconnect on channels; the socket variant is
        // covered by the TCP suite).
        SchemePolicy::AlwaysPs => {
            "drop:0>3@n2;delay2:3>0@n1;dup:1>2@n3;sever:0>3@n4;drop:2>1@n2;drop:1>3@i2l0"
        }
        // All FC layers broadcast sufficient factors worker→worker.
        SchemePolicy::AlwaysSfbForFc => "drop:0>1@n1;delay1:1>0@n2;dup:0>1@n3;sever:1>0@n1",
        // Ring: 0→1 carries REDUCE, 1→0 the DISTRIBUTE originated by the
        // last worker. Every hop is a single point of failure for the whole
        // fold, so faults here are maximally disruptive.
        SchemePolicy::AlwaysRing => "drop:0>1@n1;delay1:1>0@n2;dup:0>1@n3;sever:1>0@n1",
        // Tree (P=2): worker 1 gathers to the root over 1→0, the root
        // broadcasts back over 0→1.
        SchemePolicy::AlwaysTree => "drop:1>0@n1;delay1:0>1@n2;dup:1>0@n3;sever:0>1@n1",
        // Hybrid picks per layer; fault both kinds of links and let
        // whichever carries traffic fire.
        _ => "drop:0>3@n1;drop:0>1@n1;dup:3>0@n2;delay1:1>0@n1;sever:1>2@n1",
    };
    FaultPlan::parse(text).expect("plan parses")
}

#[test]
fn faulty_runs_converge_bitwise_for_every_scheme() {
    for policy in [
        SchemePolicy::AlwaysPs,
        SchemePolicy::AlwaysSfbForFc,
        SchemePolicy::AlwaysRing,
        SchemePolicy::AlwaysTree,
        SchemePolicy::Hybrid,
    ] {
        let clean = run(policy, FaultConfig::default());
        assert!(clean.fault_report.is_none(), "chaos plane off by default");

        let faulty = run(
            policy,
            FaultConfig {
                plan: Some(plan_for(policy)),
                reliability: None,
            },
        );

        // The headline: scripted drops, reorders, dups and severs change
        // NOTHING about the result.
        assert_eq!(
            faulty.net.max_param_diff(&clean.net),
            0.0,
            "{policy:?}: faulty run must be bitwise identical to the clean run"
        );
        assert_eq!(
            faulty.losses, clean.losses,
            "{policy:?}: per-iteration losses must match exactly"
        );

        // The chaos plane actually did something and repaired it.
        let report = faulty.fault_report.expect("chaos plane was on");
        assert!(
            !report.fired.is_empty(),
            "{policy:?}: at least one scripted fault must fire"
        );
        assert!(
            report.fired.iter().any(|f| f.action == FaultAction::Drop),
            "{policy:?}: a drop must fire to exercise retransmission"
        );
        assert!(
            report.retransmits >= 1,
            "{policy:?}: dropped frames heal via retransmit, got {report:?}"
        );
        assert!(
            report.acks_sent > 0,
            "{policy:?}: the reliability layer acks delivered frames"
        );

        // The repair is visible in the traffic ledger: retransmitted frames
        // and control traffic cost real (counted) bytes on cross-node links.
        assert!(
            faulty.traffic.total_bytes() > clean.traffic.total_bytes(),
            "{policy:?}: recovery traffic must show up in the ledger \
             (faulty {} <= clean {})",
            faulty.traffic.total_bytes(),
            clean.traffic.total_bytes()
        );
    }
}

/// A longer ring (P = 3) puts an interior relay on the fault path: frames
/// dropped, duplicated or severed mid-chain must heal without perturbing
/// the fixed fold order — the repaired run stays bitwise identical.
#[test]
fn three_worker_ring_and_tree_survive_mid_chain_faults() {
    for (policy, plan) in [
        (
            SchemePolicy::AlwaysRing,
            // REDUCE walks 0→1→2, DISTRIBUTE walks 2→0→1.
            "drop:1>2@n2;dup:2>0@n1;delay1:0>1@n3;sever:1>2@n4",
        ),
        (
            SchemePolicy::AlwaysTree,
            // Children 1,2 gather to root 0; the root broadcasts back down.
            "drop:2>0@n1;dup:1>0@n2;delay1:0>2@n1;sever:0>1@n2",
        ),
    ] {
        let cfg = |faults| RuntimeConfig {
            policy,
            partition: Partition::KvPairs { pair_elems: 37 },
            comm_timeout: Duration::from_secs(20),
            faults,
            ..RuntimeConfig::new(3, BATCH, LR, ITERS)
        };
        let clean = train(&factory, &dataset(), None, &cfg(FaultConfig::default()));
        let faulty = train(
            &factory,
            &dataset(),
            None,
            &cfg(FaultConfig {
                plan: Some(FaultPlan::parse(plan).expect("plan parses")),
                reliability: None,
            }),
        );
        assert_eq!(
            faulty.net.max_param_diff(&clean.net),
            0.0,
            "{policy:?}: mid-chain faults must be invisible to the fold"
        );
        assert_eq!(faulty.losses, clean.losses, "{policy:?}");
        let report = faulty.fault_report.expect("chaos plane on");
        assert!(
            report.fired.iter().any(|f| f.action == FaultAction::Drop),
            "{policy:?}: a drop must fire: {report:?}"
        );
        assert!(
            report.retransmits >= 1,
            "{policy:?}: the chain heals via retransmit: {report:?}"
        );
    }
}

/// The chaos contract extends to lossy codecs: residual-carrying compressors
/// make the stream *stateful*, so exactly-once in-order repair is load-bearing
/// — a dropped-then-retransmitted or duplicated compressed frame must leave
/// the error-feedback state, and therefore every replica, bitwise identical
/// to the fault-free lossy run.
#[test]
fn compressed_frames_survive_chaos_bitwise() {
    for (policy, codec) in [
        (SchemePolicy::AlwaysPs, Codec::OneBit),
        (SchemePolicy::AlwaysPs, Codec::TopK { permille: 100 }),
        (SchemePolicy::AlwaysRing, Codec::Bf16),
    ] {
        let cfg = |faults| RuntimeConfig {
            codec: CodecPolicy::Always(codec),
            ..config(policy, faults)
        };
        let clean = train(&factory, &dataset(), None, &cfg(FaultConfig::default()));
        let faulty = train(
            &factory,
            &dataset(),
            None,
            &cfg(FaultConfig {
                plan: Some(plan_for(policy)),
                reliability: None,
            }),
        );
        assert_eq!(
            faulty.net.max_param_diff(&clean.net),
            0.0,
            "{policy:?}+{codec}: chaos must be invisible to the lossy stream"
        );
        assert_eq!(faulty.losses, clean.losses, "{policy:?}+{codec}");
        let report = faulty.fault_report.expect("chaos plane on");
        assert!(
            report.fired.iter().any(|f| f.action == FaultAction::Drop),
            "{policy:?}+{codec}: a drop must fire to exercise retransmission"
        );
        assert!(
            report.retransmits >= 1,
            "{policy:?}+{codec}: compressed frames heal via retransmit: {report:?}"
        );
    }
}

/// The chaos × membership matrix: an elastic run (shard 1 drains out at
/// iteration 2 and rejoins at 4, crossing two handoff boundaries) under
/// scripted drops, dups, delays and severs — aimed at the shard→shard
/// handoff links and the PS links of the reduced-membership window — must
/// stay bitwise identical to the *clean* elastic run, which itself must be
/// bitwise identical to the fixed-membership run. Reconfiguration and
/// fault recovery compose without perturbing the math.
#[test]
fn elastic_reconfiguration_survives_chaos_bitwise() {
    use poseidon::membership::MembershipPlan;
    let elastic_cfg = |faults| RuntimeConfig {
        membership: MembershipPlan::parse("leave:1@2;join:1@4").expect("plan"),
        iterations: 6,
        ..config(SchemePolicy::AlwaysPs, faults)
    };

    let fixed = train(
        &factory,
        &dataset(),
        None,
        &RuntimeConfig {
            iterations: 6,
            ..config(SchemePolicy::AlwaysPs, FaultConfig::default())
        },
    );
    let clean = train(
        &factory,
        &dataset(),
        None,
        &elastic_cfg(FaultConfig::default()),
    );

    // Membership invariance first: who holds the pairs is invisible.
    assert_eq!(
        clean.net.max_param_diff(&fixed.net),
        0.0,
        "elastic run must be bitwise identical to the fixed-membership run"
    );
    assert_eq!(clean.losses, fixed.losses);

    // Endpoints: workers 0,1; shards 2,3. The leave at iter 2 drains 3→2,
    // the rejoin at 4 drains 2→3; both handoff links get a drop or dup on
    // their first frame (the handoff itself), the reduced-membership PS
    // links get drops, delays and a sever mid-window.
    let plan = "drop:3>2@n1;dup:2>3@n1;drop:0>2@n3;delay1:2>1@n2;sever:1>2@n2;drop:1>2@i3l0";
    let faulty = train(
        &factory,
        &dataset(),
        None,
        &elastic_cfg(FaultConfig {
            plan: Some(FaultPlan::parse(plan).expect("plan parses")),
            reliability: None,
        }),
    );
    assert_eq!(
        faulty.net.max_param_diff(&clean.net),
        0.0,
        "chaos during reconfiguration must be invisible to the result"
    );
    assert_eq!(faulty.losses, clean.losses);

    let report = faulty.fault_report.expect("chaos plane was on");
    assert!(
        report.fired.iter().any(|f| f.action == FaultAction::Drop),
        "a drop must fire to exercise retransmission: {report:?}"
    );
    assert!(
        report.retransmits >= 1,
        "dropped frames (handoff included) heal via retransmit: {report:?}"
    );
    assert!(
        faulty.traffic.total_bytes() > clean.traffic.total_bytes(),
        "recovery traffic must show up in the ledger"
    );
}

#[test]
fn chaos_runs_are_deterministic() {
    let faults = || FaultConfig {
        plan: Some(plan_for(SchemePolicy::AlwaysPs)),
        reliability: None,
    };
    let a = run(SchemePolicy::AlwaysPs, faults());
    let b = run(SchemePolicy::AlwaysPs, faults());
    assert_eq!(a.net.max_param_diff(&b.net), 0.0);
    assert_eq!(a.losses, b.losses);
    // The same plan fires the same faults on the same logical frames.
    assert_eq!(
        a.fault_report.expect("report").fired,
        b.fault_report.expect("report").fired,
        "fired-fault logs must be identical run to run"
    );
}

#[test]
fn reliability_layer_alone_is_transparent() {
    let clean = run(SchemePolicy::Hybrid, FaultConfig::default());
    let reliable = run(
        SchemePolicy::Hybrid,
        FaultConfig {
            plan: None,
            reliability: Some(ReliabilityConfig::default()),
        },
    );
    assert_eq!(
        reliable.net.max_param_diff(&clean.net),
        0.0,
        "sequencing + acks must not change the training math"
    );
    assert_eq!(reliable.losses, clean.losses);
    let report = reliable.fault_report.expect("chaos plane was on");
    assert!(report.fired.is_empty(), "no plan, no faults");
    assert_eq!(
        report.retransmits, 0,
        "a fault-free stream needs no repair: {report:?}"
    );
}

/// An unrecoverable fault — a link black-holed mid-run, control traffic
/// included — must end in a clean diagnostic abort within the comm-timeout
/// budget, never a hang. The starved endpoint's panic (carrying its
/// `TimeoutDiag`) propagates out of `train` through the thread joins.
#[test]
fn blackholed_link_aborts_bounded_instead_of_hanging() {
    let cfg = RuntimeConfig {
        comm_timeout: Duration::from_millis(600),
        ..config(
            SchemePolicy::AlwaysPs,
            FaultConfig {
                plan: Some(FaultPlan::parse("hole:0>3@n1").expect("plan")),
                reliability: None,
            },
        )
    };
    let started = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train(&factory, &dataset(), None, &cfg)
    }));
    assert!(result.is_err(), "a dead link must abort the run");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the dead-peer verdict must be bounded, took {:?}",
        started.elapsed()
    );
}
