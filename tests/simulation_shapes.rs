//! The evaluation's qualitative claims, asserted against the timing
//! simulator: who wins, by roughly what factor, and where the crossovers
//! fall. These are the shapes EXPERIMENTS.md reports.

use poseidon::config::CommScheme;
use poseidon::sim::{simulate, SimConfig, System};
use poseidon_nn::zoo;

fn speedup(model: &zoo::ModelSpec, sys: System, nodes: usize, bw: f64) -> f64 {
    simulate(model, &SimConfig::system(sys, nodes, bw)).speedup
}

/// Abstract claim: "15.5x speed-up on 16 single-GPU machines, even with
/// limited bandwidth (10GbE) and the challenging VGG19-22K network".
#[test]
fn abstract_claim_vgg19_22k_at_10gbe() {
    let s = speedup(&zoo::vgg19_22k(), System::Poseidon, 16, 10.0);
    assert!(
        s > 14.0,
        "Poseidon VGG19-22K @16 nodes/10GbE: {s}x (paper: 15.5x)"
    );
    let ps = speedup(&zoo::vgg19_22k(), System::WfbpPs, 16, 10.0);
    assert!(
        ps < 0.6 * s,
        "PS-only should collapse at 10GbE: {ps}x vs {s}x"
    );
}

/// Abstract claim: "31.5x speed-up with 32 single-GPU machines on
/// Inception-V3, a 50% improvement over the open-source TensorFlow (20x)".
#[test]
fn abstract_claim_inception_at_32_nodes() {
    let psd = speedup(&zoo::inception_v3(), System::Poseidon, 32, 40.0);
    let tf = speedup(&zoo::inception_v3(), System::TensorFlow, 32, 40.0);
    assert!(
        psd > 30.0,
        "Poseidon Inception-V3 @32: {psd}x (paper: 31.5x)"
    );
    assert!(
        tf < 26.0 && tf > 14.0,
        "TF Inception-V3 @32: {tf}x (paper: ~20x)"
    );
    assert!(psd > 1.3 * tf, "Poseidon should beat TF by ~50%");
}

/// Section 5.1: TF "fails to scale" / shows "negative scaling" on the VGG
/// models while Poseidon is near-linear.
#[test]
fn tf_fails_on_vgg_models() {
    for model in [zoo::vgg19(), zoo::vgg19_22k()] {
        let tf32 = speedup(&model, System::TensorFlow, 32, 40.0);
        assert!(
            tf32 < 6.0,
            "{}: TF @32 should be far from linear: {tf32}x",
            model.name
        );
        let psd32 = speedup(&model, System::Poseidon, 32, 40.0);
        assert!(
            psd32 > 29.0,
            "{}: Poseidon @32 near-linear: {psd32}x",
            model.name
        );
    }
}

/// Section 2.2 / Figure 5: vanilla PS loses on a single node (memcpy) and
/// scales sub-linearly even at 40GbE.
#[test]
fn vanilla_ps_is_dominated_everywhere() {
    let model = zoo::vgg19();
    for nodes in [1usize, 8, 32] {
        let ps = speedup(&model, System::CaffePs, nodes, 40.0);
        let wfbp = speedup(&model, System::WfbpPs, nodes, 40.0);
        assert!(ps < wfbp, "{nodes} nodes: Caffe+PS {ps}x !< WFBP {wfbp}x");
    }
    assert!(speedup(&model, System::CaffePs, 1, 40.0) < 0.7);
}

/// Figure 8's crossover structure: HybComm's advantage appears exactly where
/// bandwidth is short and FC layers are fat.
#[test]
fn hybrid_advantage_grows_as_bandwidth_shrinks() {
    let model = zoo::vgg19_22k();
    let gain = |bw: f64| {
        speedup(&model, System::Poseidon, 16, bw) / speedup(&model, System::WfbpPs, 16, bw)
    };
    let g10 = gain(10.0);
    let g20 = gain(20.0);
    let g40 = gain(40.0);
    assert!(
        g10 > g20 && g20 >= g40,
        "gain must shrink with bandwidth: {g10} {g20} {g40}"
    );
    assert!(g10 > 2.0, "at 10GbE the hybrid gain should be large: {g10}");
}

/// Section 5.2: "Poseidon reduces to PS when training GoogLeNet on 16 nodes"
/// — identical speedups AND identical (all-PS) scheme assignment.
#[test]
fn googlenet_reduces_to_ps() {
    let model = zoo::googlenet();
    let psd = simulate(&model, &SimConfig::system(System::Poseidon, 16, 10.0));
    let ps = simulate(&model, &SimConfig::system(System::WfbpPs, 16, 10.0));
    assert!((psd.speedup - ps.speedup).abs() < 1e-9);
    assert!(psd.schemes.iter().all(|(_, s)| *s == CommScheme::Ps));
}

/// Figure 10: Adam's traffic is imbalanced and its speedup lands near the
/// paper's "5x with 8 nodes"; Poseidon's traffic is small and even.
#[test]
fn adam_imbalance_and_speedup() {
    let model = zoo::vgg19();
    let adam = simulate(&model, &SimConfig::system(System::Adam, 8, 40.0));
    let imb = |g: &[f64]| {
        let max = g.iter().cloned().fold(0.0f64, f64::max);
        max / (g.iter().sum::<f64>() / g.len() as f64)
    };
    assert!(
        imb(&adam.per_node_gbit) > 2.0,
        "Adam hotspot missing: {:?}",
        adam.per_node_gbit
    );
    assert!(
        adam.speedup > 3.5 && adam.speedup < 6.5,
        "Adam @8 nodes: {}x (paper: ~5x)",
        adam.speedup
    );
    let psd = simulate(&model, &SimConfig::system(System::Poseidon, 8, 40.0));
    assert!(imb(&psd.per_node_gbit) < 1.2);
    let psd_total: f64 = psd.per_node_gbit.iter().sum();
    let adam_total: f64 = adam.per_node_gbit.iter().sum();
    assert!(psd_total < adam_total, "Poseidon moves fewer bits overall");
}

/// Section 5.3: CNTK-1bit trails Poseidon on VGG19 at every scale, with the
/// paper's ~5.8x at 8 nodes.
#[test]
fn cntk_one_bit_trails_poseidon() {
    let model = zoo::vgg19();
    let c8 = speedup(&model, System::Cntk1Bit, 8, 40.0);
    assert!((c8 - 5.8).abs() < 1.5, "CNTK-1bit @8: {c8}x (paper: 5.8x)");
    for nodes in [8usize, 16, 32] {
        let cntk = speedup(&model, System::Cntk1Bit, nodes, 40.0);
        let psd = speedup(&model, System::Poseidon, nodes, 40.0);
        assert!(cntk < psd, "@{nodes}: CNTK {cntk}x !< Poseidon {psd}x");
    }
}

/// Figure 7: stall ordering TF > WFBP >= Poseidon on every TF-engine model.
#[test]
fn stall_ordering_matches_figure7() {
    for model in [zoo::inception_v3(), zoo::vgg19(), zoo::vgg19_22k()] {
        let tf = simulate(&model, &SimConfig::system(System::TensorFlow, 8, 40.0));
        let wfbp = simulate(&model, &SimConfig::system(System::WfbpPs, 8, 40.0));
        let psd = simulate(&model, &SimConfig::system(System::Poseidon, 8, 40.0));
        assert!(
            tf.stall_fraction > wfbp.stall_fraction + 0.1,
            "{}: TF stall {} vs WFBP {}",
            model.name,
            tf.stall_fraction,
            wfbp.stall_fraction
        );
        assert!(psd.stall_fraction <= wfbp.stall_fraction + 1e-9);
    }
}

/// Single-node calibration: the simulator reproduces the paper's measured
/// single-node throughputs for the calibrated models.
#[test]
fn single_node_calibration_holds() {
    for (model, ips) in [
        (zoo::googlenet(), 257.0),
        (zoo::vgg19(), 35.5),
        (zoo::vgg19_22k(), 34.6),
        (zoo::inception_v3(), 43.2),
    ] {
        let r = simulate(&model, &SimConfig::system(System::Poseidon, 1, 40.0));
        assert!(
            (r.throughput_ips - ips).abs() / ips < 0.03,
            "{}: single-node {} img/s vs paper {ips}",
            model.name,
            r.throughput_ips
        );
    }
}
