//! Transport-independence of the runtime: the same configuration driven over
//! the in-process channel fabric and over a real TCP mesh produces *bitwise*
//! identical replicas, identical counted traffic, and (for PS) the serial
//! large-batch trajectory — the transport is an implementation detail, not a
//! semantic choice.
//!
//! Here the TCP mesh runs threaded inside one process (ephemeral ports, one
//! shared traffic ledger); `crates/bench/tests/tcp_loopback.rs` repeats the
//! experiment with one OS process per endpoint.

use poseidon::config::{Partition, SchemePolicy};
use poseidon::runtime::{flatten_model_params, run_endpoint, train, NodeOutcome, RuntimeConfig};
use poseidon::transport::{bind_ephemeral, TcpFabricSpec, TcpTransport, TrafficCounters};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::presets;
use poseidon_nn::Network;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 3;
const BATCH: usize = 8;
const ITERS: usize = 5;
const LR: f32 = 0.15;

fn dataset() -> Dataset {
    Dataset::gaussian_clusters(TensorShape::flat(12), 4, 96, 0.4, 21)
}

fn factory() -> Network {
    presets::mlp(&[12, 16, 8, 4], 5)
}

fn config(policy: SchemePolicy) -> RuntimeConfig {
    RuntimeConfig {
        policy,
        partition: Partition::KvPairs { pair_elems: 37 },
        comm_timeout: Duration::from_secs(60),
        ..RuntimeConfig::new(WORKERS, BATCH, LR, ITERS)
    }
}

/// Runs all `2P` endpoints as threads over a real TCP mesh on ephemeral
/// localhost ports, one shared ledger, and returns (worker replicas in worker
/// order, per-iteration losses per worker, counters).
fn run_over_tcp(policy: SchemePolicy) -> (Vec<Network>, Vec<Vec<f32>>, Arc<TrafficCounters>) {
    let cfg = config(policy);
    let n = 2 * WORKERS;
    let (listeners, addrs) = bind_ephemeral(n).expect("bind");
    let spec = TcpFabricSpec {
        addrs,
        node_of_endpoint: (0..WORKERS).chain(0..WORKERS).collect(),
        connect_timeout: Duration::from_secs(10),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        reconnect_timeout: Duration::from_secs(5),
    };
    let counters = Arc::new(TrafficCounters::new(WORKERS));
    let data = dataset();

    let mut outcomes: Vec<Option<(usize, Vec<f32>, Network)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(me, listener)| {
                let spec = spec.clone();
                let counters = Arc::clone(&counters);
                let cfg = &cfg;
                let data = &data;
                s.spawn(move || {
                    let ep =
                        TcpTransport::connect_with_listener(&spec, me, listener, Some(counters))
                            .expect("mesh connect");
                    match run_endpoint(&factory, data, None, cfg, ep) {
                        NodeOutcome::Worker { losses, net, .. } => Some((me, losses, net)),
                        NodeOutcome::Server { .. } => None,
                    }
                })
            })
            .collect();
        for h in handles {
            outcomes.push(h.join().expect("endpoint thread"));
        }
    });

    let mut nets = Vec::new();
    let mut losses = Vec::new();
    for out in outcomes.into_iter().flatten() {
        let (me, l, net) = out;
        assert_eq!(me, nets.len(), "workers must be endpoints 0..P in order");
        nets.push(net);
        losses.push(l);
    }
    assert_eq!(nets.len(), WORKERS);
    (nets, losses, counters)
}

/// Serial large-batch SGD over the reassembled worker shards (the ground
/// truth of `tests/distributed_equivalence.rs`).
fn serial_reference() -> Network {
    let shards = dataset().partition(WORKERS);
    let mut net = factory();
    let head = SoftmaxCrossEntropy;
    for it in 0..ITERS {
        let mut xs = poseidon_tensor::Matrix::zeros(WORKERS * BATCH, 12);
        let mut ys = Vec::new();
        for (w, shard) in shards.iter().enumerate() {
            let (x, y) = shard.minibatch(it * BATCH, BATCH);
            for r in 0..BATCH {
                xs.row_mut(w * BATCH + r).copy_from_slice(x.row(r));
            }
            ys.extend(y);
        }
        let logits = net.forward(&xs);
        let out = head.evaluate(&logits, &ys);
        net.backward(&out.grad);
        net.apply_own_grads(-LR);
    }
    net
}

#[test]
fn tcp_equals_inproc_bitwise_always_ps() {
    let (tcp_nets, tcp_losses, tcp_counters) = run_over_tcp(SchemePolicy::AlwaysPs);
    let inproc = train(&factory, &dataset(), None, &config(SchemePolicy::AlwaysPs));

    for (w, net) in tcp_nets.iter().enumerate() {
        assert_eq!(
            net.max_param_diff(&inproc.net),
            0.0,
            "worker {w}: TCP replica must be bitwise equal to the in-proc run"
        );
        assert_eq!(
            flatten_model_params(net),
            flatten_model_params(&inproc.net),
            "worker {w}: canonical flats must agree"
        );
    }
    // Averaged per-iteration losses agree too (same per-worker shards).
    let avg: Vec<f32> = (0..ITERS)
        .map(|i| tcp_losses.iter().map(|l| l[i]).sum::<f32>() / WORKERS as f32)
        .collect();
    assert_eq!(avg, inproc.losses);
    // And the counted traffic is identical frame for frame.
    assert_eq!(tcp_counters.total_bytes(), inproc.traffic.total_bytes());
    assert_eq!(
        tcp_counters.per_node_totals(),
        inproc.traffic.per_node_totals()
    );
    assert_eq!(tcp_counters.snapshot(), inproc.traffic.snapshot());
}

#[test]
fn tcp_matches_serial_large_batch_sgd() {
    let (tcp_nets, _, _) = run_over_tcp(SchemePolicy::AlwaysPs);
    let serial = serial_reference();
    let diff = tcp_nets[0].max_param_diff(&serial);
    assert!(
        diff < 5e-5,
        "TCP-distributed PS diverged from the serial large-batch trajectory by {diff}"
    );
}

#[test]
fn tcp_equals_inproc_bitwise_sfb_and_hybrid() {
    for policy in [SchemePolicy::AlwaysSfbForFc, SchemePolicy::Hybrid] {
        let (tcp_nets, _, tcp_counters) = run_over_tcp(policy);
        let inproc = train(&factory, &dataset(), None, &config(policy));
        assert_eq!(
            tcp_nets[0].max_param_diff(&inproc.net),
            0.0,
            "{policy:?}: TCP replica must be bitwise equal to the in-proc run"
        );
        assert_eq!(
            tcp_counters.total_bytes(),
            inproc.traffic.total_bytes(),
            "{policy:?}: transports must count identical traffic"
        );
    }
}
