//! Non-chain networks under WFBP: build an inception-style DAG with two
//! parallel branches, train it distributed, and show the per-slot scheme
//! decisions plus the reverse-topological gradient-completion order the
//! wait-free scheduler hooks into.
//!
//! Run: `cargo run --release --example branched_network`

use poseidon::config::{ClusterConfig, Partition, SchemePolicy};
use poseidon::coordinator::Coordinator;
use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::graph::GraphNetwork;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::layers::{Conv2d, FullyConnected, MaxPool2d, ReLU};
use poseidon_nn::loss::SoftmaxCrossEntropy;
use poseidon_nn::Model;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(classes: usize, seed: u64) -> GraphNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = TensorShape::new(3, 8, 8);
    let mut g = GraphNetwork::new(shape);
    let stem = g.add_layer(
        g.input(),
        Box::new(Conv2d::new("stem", shape, 8, 3, 1, 1, &mut rng)),
    );
    let s = g.node_shape(stem);
    let b1 = g.add_layer(
        stem,
        Box::new(Conv2d::new("branch1/1x1", s, 4, 1, 1, 0, &mut rng)),
    );
    let b2a = g.add_layer(
        stem,
        Box::new(Conv2d::new("branch2/reduce", s, 4, 1, 1, 0, &mut rng)),
    );
    let b2 = g.add_layer(
        b2a,
        Box::new(Conv2d::new(
            "branch2/3x3",
            g.node_shape(b2a),
            8,
            3,
            1,
            1,
            &mut rng,
        )),
    );
    let cat = g.concat(&[b1, b2]);
    let relu = g.add_layer(cat, Box::new(ReLU::new("relu", g.node_shape(cat))));
    let pool = g.add_layer(
        relu,
        Box::new(MaxPool2d::new("pool", g.node_shape(relu), 2, 2)),
    );
    let fc = g.add_layer(
        pool,
        Box::new(FullyConnected::new(
            "classifier",
            g.node_shape(pool).len(),
            classes,
            &mut rng,
        )),
    );
    g.set_output(fc);
    g
}

fn main() {
    let mut g = build(4, 7);
    println!(
        "built a two-branch DAG with {} slots, {} trainable",
        g.num_slots(),
        g.trainable_slots().len()
    );

    // Show the WFBP hook order: gradients complete reverse-topologically,
    // so the classifier's sync starts while both conv branches still compute.
    let x = poseidon_tensor::Matrix::filled(2, 192, 0.1);
    let y = g.forward(&x);
    let out = SoftmaxCrossEntropy.evaluate(&y, &[0, 1]);
    print!("gradient completion order:");
    g.backward_with(&out.grad, &mut |id, layer| print!(" {}#{id}", layer.name()));
    println!();

    // What the coordinator decides per slot.
    let coord = Coordinator::from_model(
        &g,
        ClusterConfig::colocated(4, 8),
        SchemePolicy::Hybrid,
        Partition::default_kv_pairs(),
    );
    for (slot, scheme) in coord.scheme_assignment() {
        println!(
            "  slot {slot:2} {:18} -> {scheme}",
            coord.layers()[slot].name
        );
    }

    // Train it distributed across 4 in-process machines.
    let all = Dataset::smooth_clusters(TensorShape::new(3, 8, 8), 4, 640, 1.2, 19);
    let (train_set, test_set) = all.split_at(512);
    let cfg = RuntimeConfig {
        momentum: 0.9,
        ..RuntimeConfig::new(4, 8, 0.02, 150)
    };
    let result = train(&|| build(4, 7), &train_set, None, &cfg);
    let mut net = result.net;
    println!(
        "\ntrained 150 iterations on 4 workers: loss {:.3} -> {:.3}, test error {:.3}",
        result.losses[0],
        result.losses.last().unwrap(),
        evaluate_error(&mut net, &test_set)
    );
}
