//! Quickstart: train a small network data-parallel across 4 in-process
//! "machines" with Poseidon's full pipeline (WFBP + HybComm over a
//! byte-counted transport), then inspect what the coordinator decided and
//! what it cost.
//!
//! Run: `cargo run --release --example quickstart`

use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;

fn main() {
    // A learnable synthetic task: 10 classes of smooth 3x16x16 "images".
    let all = Dataset::smooth_clusters(TensorShape::new(3, 16, 16), 10, 1200, 2.0, 7);
    let (train_set, test_set) = all.split_at(1000);

    // 4 workers, batch 8 each, 150 synchronous iterations. The default
    // policy is HybComm: the coordinator picks PS or SFB per layer.
    let cfg = RuntimeConfig::new(4, 8, 0.08, 150);

    println!("training a cifar10_quick-style CNN on 4 workers (hybrid communication)...");
    let result = train(
        &|| presets::cifar_quick_scaled(TensorShape::new(3, 16, 16), 8, 10, 42),
        &train_set,
        None,
        &cfg,
    );

    println!("\nper-layer scheme decisions (Algorithm 1):");
    for &(layer, scheme) in &result.schemes {
        println!("  layer {layer:2} -> {scheme}");
    }

    println!(
        "\nloss: first {:.3} -> last {:.3}",
        result.losses[0],
        result.losses.last().unwrap()
    );
    let mut net = result.net;
    let err = evaluate_error(&mut net, &test_set);
    println!("final top-1 test error: {err:.3}");

    println!("\nbytes that crossed the (in-process) network, per node:");
    for (node, bytes) in result.traffic.per_node_totals().iter().enumerate() {
        println!("  node{node}: {:.2} MB", *bytes as f64 / 1e6);
    }
}
