//! WFBP timeline: visualise *why* wait-free backpropagation works — replay
//! one simulated VGG19 iteration with the telemetry recorder on and render
//! the recorded event stream: each trainable layer's backward completion,
//! when its `wfbp.sync` span ran, and how much of it hid under the long conv
//! backward tail. The heavy FC layers finish backward first, so their
//! communication overlaps almost the entire remaining compute.
//!
//! Run: `cargo run --release --example wfbp_timeline`
//! The same event schema comes out of a live run
//! (`poseidon-node --trace-out`), so this doubles as a reading guide for
//! those traces.

use poseidon::sim::{simulate_with_trace, SimConfig, System};
use poseidon::telemetry::{report, EventKind, Track};
use poseidon_nn::zoo;

/// Pairs begin/end events of `name` on a track into `(layer, start, end)`
/// intervals (one open-span stack per lane, innermost-first).
fn close_spans(track: &Track, name: &str) -> Vec<(u64, u64, u64)> {
    let mut stacks: Vec<(u32, Vec<(u64, u64)>)> = Vec::new();
    let mut out = Vec::new();
    for ev in &track.events {
        if ev.name != name {
            continue;
        }
        let stack = match stacks.iter_mut().find(|(l, _)| *l == ev.lane) {
            Some((_, s)) => s,
            None => {
                stacks.push((ev.lane, Vec::new()));
                &mut stacks.last_mut().unwrap().1
            }
        };
        match ev.kind {
            EventKind::Begin => stack.push((ev.a, ev.ts_ns)),
            EventKind::End => {
                if let Some((a, start)) = stack.pop() {
                    out.push((a, start, ev.ts_ns));
                }
            }
            _ => {}
        }
    }
    out
}

fn main() {
    let model = zoo::vgg19();
    let cfg = SimConfig::system(System::Poseidon, 8, 40.0);
    let (rep, trace) = simulate_with_trace(&model, &cfg);

    print!(
        "{}",
        report::summarize(std::slice::from_ref(&trace)).render()
    );

    let track = trace
        .tracks
        .iter()
        .find(|t| t.name == "node 0")
        .expect("worker 0 track");
    let (_, t0, t1) = close_spans(track, "iter")
        .pop()
        .expect("one iter span on the worker track");
    let bwd = close_spans(track, "bwd");
    let mut sync = close_spans(track, "wfbp.sync");
    let last_bwd_end = bwd.iter().map(|&(_, _, e)| e).max().unwrap_or(t1);

    let ms = |ns: u64| (ns - t0) as f64 / 1e6;
    println!(
        "\nVGG19 on 8 nodes at 40GbE: worker 0, one recorded iteration = {:.0} ms",
        (t1 - t0) as f64 / 1e6
    );
    println!(
        "(iteration time {:.3} s, {:.0} img/s cluster-wide)\n",
        rep.iter_time_s, rep.throughput_ips
    );
    println!(
        "{:>3} {:>12} {:>10} {:>16}  sync span on the timeline (| = backward done)",
        "l", "layer", "bwd done", "wfbp.sync"
    );

    // Print in backward-completion order (top of the net first), the order
    // the syncs are issued.
    sync.sort_by_key(|&(l, _, _)| std::cmp::Reverse(l));
    const W: usize = 44;
    let col = |ns: u64| (((ns - t0) as f64 / (t1 - t0) as f64) * W as f64).round() as usize;
    for &(l, s, e) in &sync {
        let spec = &model.layers[l as usize];
        let done = bwd
            .iter()
            .find(|&&(bl, _, _)| bl == l)
            .map(|&(_, _, be)| be)
            .unwrap_or(s);
        let (c0, c1, cb) = (col(s), col(e).max(col(s) + 1), col(last_bwd_end).min(W - 1));
        let bar: String = (0..W)
            .map(|i| match i {
                _ if i == cb => '|',
                _ if i >= c0 && i < c1 && i < cb => '#',
                _ if i >= c0 && i < c1 => '+',
                _ => ' ',
            })
            .collect();
        println!(
            "{:>3} {:>12} {:>7.0} ms {:>6.0}..{:>4.0} ms  {}",
            l,
            spec.name,
            ms(done),
            ms(s),
            ms(e),
            bar
        );
    }
    println!("\n'#' = sync time hidden under backward compute, '+' = exposed after it.");
    println!("fc6-fc8 hold 86% of the parameters but finish backward first — their");
    println!("synchronisation overlaps the entire conv backward tail.");
}
