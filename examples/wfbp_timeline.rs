//! WFBP timeline: visualise *why* wait-free backpropagation works — for
//! VGG19, print each trainable layer's backward-completion time, its
//! parameter volume, and the scheme HybComm picks, showing that the heavy FC
//! layers finish first and their communication hides under the long conv
//! backward tail.
//!
//! Run: `cargo run --release --example wfbp_timeline`

use poseidon::config::{ClusterConfig, Partition, SchemePolicy};
use poseidon::coordinator::Coordinator;
use poseidon::sim::LayerTimes;
use poseidon_nn::zoo;

fn main() {
    let model = zoo::vgg19();
    let cluster = ClusterConfig::colocated(8, model.default_batch);
    let coordinator = Coordinator::from_spec(
        &model,
        cluster,
        SchemePolicy::Hybrid,
        Partition::default_kv_pairs(),
    );
    let times = LayerTimes::derive(&model, model.default_batch, 4.0e12);

    // Backward runs top-down; accumulate completion times.
    let fwd_total: f64 = times.fwd.iter().sum();
    let mut t = fwd_total;
    let mut rows: Vec<(usize, f64)> = Vec::new();
    for l in (0..model.layers.len()).rev() {
        t += times.bwd[l];
        rows.push((l, t));
    }
    let total = t;

    println!(
        "VGG19, batch {}, one iteration = {:.0} ms compute ({:.0} ms forward)\n",
        model.default_batch,
        total * 1e3,
        fwd_total * 1e3
    );
    println!(
        "{:>3} {:>12} {:>10} {:>12} {:>8}  remaining backward that hides its comm",
        "l", "layer", "bwd done", "params", "scheme"
    );
    for (l, done) in rows {
        let spec = &model.layers[l];
        if !spec.is_trainable() {
            continue;
        }
        let scheme = coordinator.best_scheme(l);
        let remaining = total - done;
        let bar_len = (remaining / total * 40.0).round() as usize;
        println!(
            "{:>3} {:>12} {:>8.0} ms {:>11.1}M {:>8}  {}",
            l,
            spec.name,
            done * 1e3,
            spec.params as f64 / 1e6,
            scheme.to_string(),
            "#".repeat(bar_len)
        );
    }
    println!("\nfc6-fc8 hold 86% of the parameters but finish backward first — their");
    println!("synchronisation overlaps the entire conv backward (the long bars).");
}
