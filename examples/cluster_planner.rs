//! Cluster planner: before renting machines, ask the simulator what
//! bandwidth and cluster size a model actually needs — the workload of the
//! paper's intro (is 10GbE enough for VGG19? what do I gain from HybComm?).
//!
//! Run: `cargo run --release --example cluster_planner -- [model]`
//! where model is one of: googlenet, inception, vgg19, vgg19-22k, resnet152
//! (default vgg19).

use poseidon::sim::{simulate, SimConfig, System};
use poseidon_nn::zoo::{self, ModelSpec};

fn model_by_name(name: &str) -> ModelSpec {
    match name {
        "googlenet" => zoo::googlenet(),
        "inception" => zoo::inception_v3(),
        "vgg19" => zoo::vgg19(),
        "vgg19-22k" => zoo::vgg19_22k(),
        "resnet152" => zoo::resnet152(),
        other => {
            eprintln!("unknown model '{other}', using vgg19");
            zoo::vgg19()
        }
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "vgg19".into());
    let model = model_by_name(&name);
    println!(
        "{}: {:.1}M parameters, {:.0}% in FC layers, batch {}\n",
        model.name,
        model.total_params() as f64 / 1e6,
        model.fc_fraction() * 100.0,
        model.default_batch
    );

    println!("efficiency (speedup / nodes) by bandwidth, Poseidon vs PS-only:");
    println!(
        "{:>8} {:>7} {:>14} {:>14}",
        "nodes", "GbE", "Poseidon", "PS-only"
    );
    for &nodes in &[8usize, 16, 32] {
        for &bw in &[1.0, 5.0, 10.0, 25.0, 40.0] {
            let psd = simulate(&model, &SimConfig::system(System::Poseidon, nodes, bw));
            let ps = simulate(&model, &SimConfig::system(System::WfbpPs, nodes, bw));
            println!(
                "{:>8} {:>7} {:>13.0}% {:>13.0}%",
                nodes,
                bw,
                100.0 * psd.speedup / nodes as f64,
                100.0 * ps.speedup / nodes as f64,
            );
        }
        println!();
    }

    // Find the cheapest bandwidth at which Poseidon keeps >= 90% efficiency
    // on 16 nodes.
    let verdict = [1.0, 2.0, 5.0, 10.0, 25.0, 40.0].iter().find(|&&bw| {
        let r = simulate(&model, &SimConfig::system(System::Poseidon, 16, bw));
        r.speedup / 16.0 >= 0.9
    });
    match verdict {
        Some(bw) => println!(
            "=> {} scales to 16 nodes at >=90% efficiency with {bw:.0} GbE under Poseidon.",
            model.name
        ),
        None => println!(
            "=> even 40 GbE cannot hold 90% efficiency at 16 nodes for {}.",
            model.name
        ),
    }
}
