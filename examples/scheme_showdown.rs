//! Scheme showdown: train the same model with every communication scheme on
//! the real threaded runtime and compare convergence, bytes moved and wall
//! time — the paper's Section 5.3 comparison in miniature.
//!
//! Run: `cargo run --release --example scheme_showdown`

use poseidon::config::SchemePolicy;
use poseidon::runtime::{evaluate_error, train, RuntimeConfig};
use poseidon_nn::data::Dataset;
use poseidon_nn::layer::TensorShape;
use poseidon_nn::presets;
use std::time::Instant;

fn main() {
    let all = Dataset::smooth_clusters(TensorShape::new(3, 16, 16), 10, 1200, 2.0, 99);
    let (train_set, test_set) = all.split_at(1000);

    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>10}",
        "policy", "loss", "test err", "net MB", "wall s"
    );
    for (policy, name) in [
        (SchemePolicy::AlwaysPs, "PS"),
        (SchemePolicy::AlwaysSfbForFc, "SFB"),
        (SchemePolicy::Hybrid, "Hybrid"),
        (SchemePolicy::AdamSf, "Adam"),
        (SchemePolicy::OneBit, "1-bit"),
    ] {
        let cfg = RuntimeConfig {
            policy,
            ..RuntimeConfig::new(4, 8, 0.08, 120)
        };
        let t0 = Instant::now();
        let result = train(
            &|| presets::cifar_quick_scaled(TensorShape::new(3, 16, 16), 8, 10, 42),
            &train_set,
            None,
            &cfg,
        );
        let wall = t0.elapsed().as_secs_f64();
        let mut net = result.net;
        let err = evaluate_error(&mut net, &test_set);
        let mb = result.traffic.total_bytes() as f64 / 1e6;
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>12.1} {:>10.2}",
            name,
            result.losses.last().unwrap(),
            err,
            mb,
            wall
        );
    }
    println!("\nExpected: PS, Hybrid and Adam are bitwise-identical trajectories and");
    println!("SFB matches within floating-point tolerance (all four are *exact*");
    println!("synchronisation — only the wire format differs). 1-bit is lossy: its");
    println!("trajectory deviates (the mean-magnitude decode inflates small gradient");
    println!("entries, which can speed up or hurt convergence depending on the");
    println!("learning-rate regime — see fig11 and EXPERIMENTS.md).");
}
